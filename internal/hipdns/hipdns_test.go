package hipdns

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"hipcloud/internal/netsim"
)

var (
	srvAddr = netip.MustParseAddr("10.0.0.1")
	cliAddr = netip.MustParseAddr("10.0.0.2")
	hitX    = netip.MustParseAddr("2001:10::1234")
	rvsAddr = netip.MustParseAddr("198.51.100.9")
)

func world(t *testing.T) (*netsim.Sim, *Server, *Resolver) {
	t.Helper()
	s := netsim.New(1)
	n := netsim.NewNetwork(s)
	a := n.AddNode("ns", 2, 2)
	b := n.AddNode("cli", 2, 2)
	n.Connect(a, srvAddr, b, cliAddr, netsim.Link{Latency: 2 * time.Millisecond})
	srv := NewServer(a)
	res := NewResolver(b, srvAddr)
	return s, srv, res
}

func TestLookupA(t *testing.T) {
	s, srv, res := world(t)
	srv.Set("web1.cloud", Record{Type: TypeA, TTL: time.Minute, Addr: netip.MustParseAddr("10.10.0.5")})
	var got netip.Addr
	var err error
	s.Spawn("q", func(p *netsim.Proc) {
		got, err = res.LookupAddr(p, "web1.cloud")
	})
	s.Run(10 * time.Second)
	s.Shutdown()
	if err != nil || got != netip.MustParseAddr("10.10.0.5") {
		t.Fatalf("lookup: %v %v", got, err)
	}
}

func TestLookupHIPRecord(t *testing.T) {
	s, srv, res := world(t)
	pk := bytes.Repeat([]byte{0xAB}, 91)
	srv.Set("db.cloud", Record{
		Type: TypeHIP, TTL: time.Minute,
		HIP: &HIPRecord{HIT: hitX, Algorithm: 7, PublicKey: pk, RendezvousServers: []netip.Addr{rvsAddr}},
	})
	var got *HIPRecord
	var err error
	s.Spawn("q", func(p *netsim.Proc) {
		got, err = res.LookupHIP(p, "db.cloud")
	})
	s.Run(10 * time.Second)
	s.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	if got.HIT != hitX || got.Algorithm != 7 || !bytes.Equal(got.PublicKey, pk) {
		t.Fatalf("HIP RR mismatch: %+v", got)
	}
	if len(got.RendezvousServers) != 1 || got.RendezvousServers[0] != rvsAddr {
		t.Fatalf("rvs: %v", got.RendezvousServers)
	}
}

func TestNXDomain(t *testing.T) {
	s, _, res := world(t)
	var err error
	s.Spawn("q", func(p *netsim.Proc) {
		_, err = res.Lookup(p, "ghost.cloud", TypeA)
	})
	s.Run(10 * time.Second)
	s.Shutdown()
	if err != ErrNoRecord {
		t.Fatalf("err = %v, want ErrNoRecord", err)
	}
}

func TestCacheHonorsTTL(t *testing.T) {
	s, srv, res := world(t)
	srv.Set("vm.cloud", Record{Type: TypeA, TTL: 2 * time.Second, Addr: netip.MustParseAddr("10.10.0.1")})
	var first, second, third netip.Addr
	s.Spawn("q", func(p *netsim.Proc) {
		first, _ = res.LookupAddr(p, "vm.cloud")
		// Server-side change: resolver must keep serving the cache...
		srv.Set("vm.cloud", Record{Type: TypeA, TTL: 2 * time.Second, Addr: netip.MustParseAddr("10.10.0.2")})
		second, _ = res.LookupAddr(p, "vm.cloud")
		// ...until the short TTL expires (the paper's mobility re-contact).
		p.Sleep(3 * time.Second)
		third, _ = res.LookupAddr(p, "vm.cloud")
	})
	s.Run(30 * time.Second)
	s.Shutdown()
	if first != netip.MustParseAddr("10.10.0.1") || second != first {
		t.Fatalf("cache not used: %v %v", first, second)
	}
	if third != netip.MustParseAddr("10.10.0.2") {
		t.Fatalf("TTL expiry not honored: %v", third)
	}
	if res.CacheHits != 1 {
		t.Fatalf("cache hits = %d", res.CacheHits)
	}
}

func TestRetryOnLoss(t *testing.T) {
	s := netsim.New(3)
	n := netsim.NewNetwork(s)
	a := n.AddNode("ns", 2, 2)
	b := n.AddNode("cli", 2, 2)
	n.Connect(a, srvAddr, b, cliAddr, netsim.Link{Latency: 2 * time.Millisecond, LossProb: 0.4})
	srv := NewServer(a)
	res := NewResolver(b, srvAddr)
	srv.Set("x.cloud", Record{Type: TypeA, TTL: time.Minute, Addr: netip.MustParseAddr("10.0.0.9")})
	ok := 0
	s.Spawn("q", func(p *netsim.Proc) {
		for i := 0; i < 10; i++ {
			res.cache = map[cacheKey]cacheEntry{} // force wire traffic
			if _, err := res.LookupAddr(p, "x.cloud"); err == nil {
				ok++
			}
		}
	})
	s.Run(2 * time.Minute)
	s.Shutdown()
	if ok < 8 {
		t.Fatalf("only %d/10 lookups succeeded at 40%% loss", ok)
	}
}

// TestServeStaleDuringOutage: with the nameserver dark, a lapsed cache
// entry within the stale window is served instead of an error.
func TestServeStaleDuringOutage(t *testing.T) {
	s, srv, res := world(t)
	srv.Set("vm.cloud", Record{Type: TypeA, TTL: time.Second, Addr: netip.MustParseAddr("10.10.0.7")})
	var fresh, staleA netip.Addr
	var staleErr error
	s.Spawn("q", func(p *netsim.Proc) {
		fresh, _ = res.LookupAddr(p, "vm.cloud")
		p.Sleep(2 * time.Second) // TTL lapses
		res.node.Down = true     // server unreachable (our side goes dark)
		staleA, staleErr = res.LookupAddr(p, "vm.cloud")
	})
	s.Run(time.Minute)
	s.Shutdown()
	if fresh != netip.MustParseAddr("10.10.0.7") {
		t.Fatalf("fresh = %v", fresh)
	}
	if staleErr != nil || staleA != fresh {
		t.Fatalf("stale answer = %v, %v; want the lapsed record", staleA, staleErr)
	}
	if res.ServedStale != 1 {
		t.Fatalf("ServedStale = %d", res.ServedStale)
	}
}

// TestServerShedsWithRetryAfter: a loaded server bounds its inflight
// queue and answers overflow with retry-after rather than silence.
func TestServerShedsWithRetryAfter(t *testing.T) {
	s, srv, res := world(t)
	srv.PerQueryCost = 50 * time.Millisecond
	srv.MaxPending = 2
	srv.Set("x.cloud", Record{Type: TypeA, TTL: time.Minute, Addr: netip.MustParseAddr("10.0.0.9")})
	// Blast raw queries to fill the pending queue, then measure a real
	// lookup: it must still complete (after backoff) or serve stale.
	ok := 0
	s.Spawn("blast", func(p *netsim.Proc) {
		for i := 0; i < 20; i++ {
			res.sock.SendTo(res.server, encodeQuery(60000+uint16(i), "x.cloud", TypeA))
		}
	})
	s.Spawn("q", func(p *netsim.Proc) {
		p.Sleep(10 * time.Millisecond)
		if _, err := res.LookupAddr(p, "x.cloud"); err == nil {
			ok++
		}
	})
	s.Run(time.Minute)
	s.Shutdown()
	if srv.Shed == 0 {
		t.Fatal("server shed nothing under a 20-query blast with MaxPending=2")
	}
	if ok != 1 {
		t.Fatal("lookup failed to complete against a shedding server")
	}
}

// TestRetryBudgetBoundsRetries: an empty token bucket suppresses
// retransmissions, so a client cannot amplify an outage.
func TestRetryBudgetBoundsRetries(t *testing.T) {
	s, _, res := world(t)
	res.RetryBudget = 1
	res.RetryPerSec = 0.001 // effectively no refill within the test
	res.StaleFor = -1       // isolate the budget path
	errs := 0
	s.Spawn("q", func(p *netsim.Proc) {
		res.node.Down = true // all queries black-holed
		for i := 0; i < 5; i++ {
			if _, err := res.LookupAddr(p, "x.cloud"); err != nil {
				errs++
			}
		}
	})
	s.Run(2 * time.Minute)
	s.Shutdown()
	if errs != 5 {
		t.Fatalf("errs = %d, want 5", errs)
	}
	// 5 lookups × 2 possible retries each = 10 without a budget; the
	// 1-token bucket admits ~1.
	if res.Retries > 2 {
		t.Fatalf("Retries = %d despite a 1-token budget", res.Retries)
	}
	if res.BudgetDenied == 0 {
		t.Fatal("budget denied nothing")
	}
}

func TestDynamicUpdateReplacesType(t *testing.T) {
	s, srv, res := world(t)
	srv.Set("m.cloud",
		Record{Type: TypeA, TTL: time.Minute, Addr: netip.MustParseAddr("10.0.0.1")},
		Record{Type: TypeHIP, TTL: time.Minute, HIP: &HIPRecord{HIT: hitX, PublicKey: []byte{1}}},
	)
	srv.Set("m.cloud", Record{Type: TypeA, TTL: time.Minute, Addr: netip.MustParseAddr("10.0.0.2")})
	var a netip.Addr
	var hip *HIPRecord
	s.Spawn("q", func(p *netsim.Proc) {
		a, _ = res.LookupAddr(p, "m.cloud")
		hip, _ = res.LookupHIP(p, "m.cloud")
	})
	s.Run(10 * time.Second)
	s.Shutdown()
	if a != netip.MustParseAddr("10.0.0.2") {
		t.Fatalf("A not updated: %v", a)
	}
	if hip == nil || hip.HIT != hitX {
		t.Fatal("HIP RR lost by dynamic A update")
	}
}

// Property: record data encoding round-trips for all types.
func TestRecordCodecProperty(t *testing.T) {
	f := func(pk []byte, a4 [4]byte, a16 [16]byte, nRVS uint8) bool {
		if len(pk) > 512 {
			pk = pk[:512]
		}
		recs := []Record{
			{Type: TypeA, Addr: netip.AddrFrom4(a4)},
			{Type: TypeAAAA, Addr: netip.AddrFrom16(a16)},
		}
		h := &HIPRecord{HIT: hitX, Algorithm: 5, PublicKey: pk}
		for i := 0; i < int(nRVS%4); i++ {
			h.RendezvousServers = append(h.RendezvousServers, rvsAddr)
		}
		recs = append(recs, Record{Type: TypeHIP, HIP: h})
		for _, r := range recs {
			got, err := decodeRecordData(r.Type, encodeRecordData(r))
			if err != nil {
				return false
			}
			switch r.Type {
			case TypeA, TypeAAAA:
				if got.Addr != r.Addr {
					return false
				}
			case TypeHIP:
				if got.HIP.HIT != r.HIP.HIT || !bytes.Equal(got.HIP.PublicKey, pk) ||
					len(got.HIP.RendezvousServers) != len(h.RendezvousServers) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the message parser never panics on arbitrary bytes.
func TestParseMessageNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = parseMessage(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
