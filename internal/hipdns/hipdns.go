// Package hipdns is a miniature DNS implementation carrying the HIP
// resource records of RFC 5205: A/AAAA records plus HIP RRs (HIT, public
// key, rendezvous servers). The paper's future-work section calls out
// automated DNS for production deployments; this package provides the
// server, a caching resolver with the short-TTL re-contact behaviour the
// paper cites for mobility, and dynamic updates for migrating VMs.
//
// The wire format is a compact DNS-like encoding (fixed header, one
// question, answer records) without RFC 1035 name compression.
package hipdns

import (
	"encoding/binary"
	"errors"
	"net/netip"
	"time"

	"hipcloud/internal/netsim"
)

// Port is the DNS service port.
const Port uint16 = 53

// RRType identifies record types (IANA values).
type RRType uint16

// Supported record types.
const (
	TypeA    RRType = 1
	TypeAAAA RRType = 28
	TypeHIP  RRType = 55
)

func (t RRType) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeAAAA:
		return "AAAA"
	case TypeHIP:
		return "HIP"
	}
	return "TYPE?"
}

// Errors returned by the resolver.
var (
	ErrNoRecord = errors.New("hipdns: no such record")
	ErrTimeout  = errors.New("hipdns: query timed out")
	ErrBadMsg   = errors.New("hipdns: malformed message")
)

// HIPRecord is the RFC 5205 HIP RR payload.
type HIPRecord struct {
	HIT       netip.Addr
	Algorithm uint8
	PublicKey []byte
	// RendezvousServers lists RVS addresses for re-contacting mobile
	// hosts.
	RendezvousServers []netip.Addr
}

// Record is one resource record.
type Record struct {
	Name string
	Type RRType
	TTL  time.Duration
	// Addr holds A/AAAA data.
	Addr netip.Addr
	// HIP holds TypeHIP data.
	HIP *HIPRecord
}

// --- wire codec ---

// message layout: txid(2) flags(1: 0=query 1=response, |2=nxdomain,
// |4=retry-after i.e. server shed the query under overload)
// qtype(2) qnameLen(1) qname answerCount(1) answers...
// answer: type(2) ttlSecs(4) dataLen(2) data.

func putString(b []byte, s string) []byte {
	b = append(b, byte(len(s)))
	return append(b, s...)
}

func encodeQuery(txid uint16, name string, t RRType) []byte {
	b := make([]byte, 0, 8+len(name))
	b = binary.BigEndian.AppendUint16(b, txid)
	b = append(b, 0)
	b = binary.BigEndian.AppendUint16(b, uint16(t))
	b = putString(b, name)
	return b
}

func encodeRecordData(r Record) []byte {
	switch r.Type {
	case TypeA:
		a := r.Addr.As4()
		return a[:]
	case TypeAAAA:
		a := r.Addr.As16()
		return a[:]
	case TypeHIP:
		h := r.HIP
		hit := h.HIT.As16()
		b := make([]byte, 0, 20+len(h.PublicKey)+16*len(h.RendezvousServers))
		b = append(b, 16, h.Algorithm)
		b = binary.BigEndian.AppendUint16(b, uint16(len(h.PublicKey)))
		b = append(b, hit[:]...)
		b = append(b, h.PublicKey...)
		b = append(b, byte(len(h.RendezvousServers)))
		for _, rvs := range h.RendezvousServers {
			a := rvs.As16()
			b = append(b, a[:]...)
		}
		return b
	}
	return nil
}

func decodeRecordData(t RRType, data []byte) (Record, error) {
	r := Record{Type: t}
	switch t {
	case TypeA:
		if len(data) != 4 {
			return r, ErrBadMsg
		}
		r.Addr = netip.AddrFrom4([4]byte(data))
	case TypeAAAA:
		if len(data) != 16 {
			return r, ErrBadMsg
		}
		r.Addr = netip.AddrFrom16([16]byte(data))
	case TypeHIP:
		if len(data) < 4 {
			return r, ErrBadMsg
		}
		hitLen := int(data[0])
		alg := data[1]
		pkLen := int(binary.BigEndian.Uint16(data[2:]))
		if hitLen != 16 || len(data) < 4+16+pkLen+1 {
			return r, ErrBadMsg
		}
		var hit [16]byte
		copy(hit[:], data[4:20])
		h := &HIPRecord{HIT: netip.AddrFrom16(hit), Algorithm: alg}
		h.PublicKey = append([]byte(nil), data[20:20+pkLen]...)
		off := 20 + pkLen
		nRVS := int(data[off])
		off++
		if len(data) < off+16*nRVS {
			return r, ErrBadMsg
		}
		for i := 0; i < nRVS; i++ {
			var a [16]byte
			copy(a[:], data[off+16*i:])
			addr := netip.AddrFrom16(a)
			if addr.Is4In6() {
				addr = addr.Unmap()
			}
			h.RendezvousServers = append(h.RendezvousServers, addr)
		}
		r.HIP = h
	default:
		return r, ErrBadMsg
	}
	return r, nil
}

// encodeRetryAfter builds the shed response: a response-flagged message
// with the retry-after bit and no answers. The resolver backs off and
// retries (or serves stale) instead of hammering an overloaded server.
func encodeRetryAfter(txid uint16, name string, t RRType) []byte {
	b := make([]byte, 0, 8+len(name))
	b = binary.BigEndian.AppendUint16(b, txid)
	b = append(b, 1|4)
	b = binary.BigEndian.AppendUint16(b, uint16(t))
	b = putString(b, name)
	return append(b, 0)
}

func encodeResponse(txid uint16, name string, t RRType, recs []Record) []byte {
	b := make([]byte, 0, 64)
	b = binary.BigEndian.AppendUint16(b, txid)
	flags := byte(1)
	if len(recs) == 0 {
		flags |= 2
	}
	b = append(b, flags)
	b = binary.BigEndian.AppendUint16(b, uint16(t))
	b = putString(b, name)
	b = append(b, byte(len(recs)))
	for _, r := range recs {
		b = binary.BigEndian.AppendUint16(b, uint16(r.Type))
		b = binary.BigEndian.AppendUint32(b, uint32(r.TTL/time.Second))
		data := encodeRecordData(r)
		b = binary.BigEndian.AppendUint16(b, uint16(len(data)))
		b = append(b, data...)
	}
	return b
}

type parsedMsg struct {
	txid       uint16
	response   bool
	nxdomain   bool
	retryAfter bool
	qtype      RRType
	name       string
	answers    []Record
}

func parseMessage(b []byte) (parsedMsg, error) {
	var m parsedMsg
	if len(b) < 6 {
		return m, ErrBadMsg
	}
	m.txid = binary.BigEndian.Uint16(b)
	m.response = b[2]&1 != 0
	m.nxdomain = b[2]&2 != 0
	m.retryAfter = b[2]&4 != 0
	m.qtype = RRType(binary.BigEndian.Uint16(b[3:]))
	nameLen := int(b[5])
	if len(b) < 6+nameLen {
		return m, ErrBadMsg
	}
	m.name = string(b[6 : 6+nameLen])
	off := 6 + nameLen
	if !m.response {
		return m, nil
	}
	if len(b) < off+1 {
		return m, ErrBadMsg
	}
	n := int(b[off])
	off++
	for i := 0; i < n; i++ {
		if len(b) < off+8 {
			return m, ErrBadMsg
		}
		t := RRType(binary.BigEndian.Uint16(b[off:]))
		ttl := time.Duration(binary.BigEndian.Uint32(b[off+2:])) * time.Second
		dl := int(binary.BigEndian.Uint16(b[off+6:]))
		off += 8
		if len(b) < off+dl {
			return m, ErrBadMsg
		}
		rec, err := decodeRecordData(t, b[off:off+dl])
		if err != nil {
			return m, err
		}
		rec.Name = m.name
		rec.TTL = ttl
		m.answers = append(m.answers, rec)
		off += dl
	}
	return m, nil
}

// DefaultMaxPending bounds the server's inflight-query queue when a
// per-query cost makes service time non-zero.
const DefaultMaxPending = 64

// Server is an authoritative nameserver on a simulated node.
type Server struct {
	node *netsim.Node
	sock *netsim.UDPSocket
	zone map[string][]Record

	// PerQueryCost charges this much node CPU per served query. Zero
	// keeps the original free inline path; non-zero makes the server a
	// finite resource: queries queue behind the charge, the queue is
	// bounded at MaxPending, and overflow is answered with retry-after
	// instead of silence — bounded inflight, shed the rest.
	PerQueryCost time.Duration
	// MaxPending bounds the pending queue (0 = DefaultMaxPending;
	// only meaningful with PerQueryCost > 0).
	MaxPending int
	pending    []netsim.Datagram
	kicked     bool
	charging   bool
	serviceFn  func()
	doneFn     func()

	// Queries counts served lookups; Shed counts queries answered with
	// retry-after because the pending queue was full.
	Queries uint64
	Shed    uint64
}

// NewServer starts a DNS server on node.
func NewServer(node *netsim.Node) *Server {
	s := &Server{node: node, zone: make(map[string][]Record)}
	s.sock = node.MustBindUDP(Port)
	s.sock.Handler = s.onQuery
	s.serviceFn = s.service
	s.doneFn = s.chargeDone
	return s
}

// Addr returns the server address.
func (s *Server) Addr() netip.Addr { return s.node.Addr() }

// Set replaces the records of (name, type) — dynamic DNS update for VM
// migration.
func (s *Server) Set(name string, recs ...Record) {
	var kept []Record
	types := map[RRType]bool{}
	for _, r := range recs {
		types[r.Type] = true
	}
	for _, r := range s.zone[name] {
		if !types[r.Type] {
			kept = append(kept, r)
		}
	}
	for i := range recs {
		recs[i].Name = name
	}
	s.zone[name] = append(kept, recs...)
}

func (s *Server) onQuery(dg netsim.Datagram) {
	if s.PerQueryCost <= 0 {
		s.answer(dg)
		return
	}
	max := s.MaxPending
	if max <= 0 {
		max = DefaultMaxPending
	}
	if len(s.pending) >= max {
		s.Shed++
		if m, err := parseMessage(dg.Payload); err == nil && !m.response {
			s.sock.SendTo(dg.Src, encodeRetryAfter(m.txid, m.name, m.qtype))
		}
		return
	}
	s.pending = append(s.pending, dg)
	s.kick()
}

// kick schedules a service pass, coalescing wake requests (the hipsim
// run-to-completion pattern).
func (s *Server) kick() {
	if s.kicked || s.charging {
		return
	}
	s.kicked = true
	sim := s.node.Net().Sim()
	sim.At(sim.Now(), s.serviceFn)
}

// service starts the CPU charge for the query at the head of the queue.
func (s *Server) service() {
	s.kicked = false
	if s.charging || len(s.pending) == 0 {
		return
	}
	s.charging = true
	s.node.CPU().UseAsync(s.PerQueryCost, s.doneFn)
}

// chargeDone answers the charged query and moves to the next.
func (s *Server) chargeDone() {
	s.charging = false
	if len(s.pending) > 0 {
		dg := s.pending[0]
		s.pending = s.pending[1:]
		s.answer(dg)
	}
	if len(s.pending) > 0 {
		s.kick()
	}
}

func (s *Server) answer(dg netsim.Datagram) {
	m, err := parseMessage(dg.Payload)
	if err != nil || m.response {
		return
	}
	s.Queries++
	var out []Record
	for _, r := range s.zone[m.name] {
		if r.Type == m.qtype {
			out = append(out, r)
		}
	}
	s.sock.SendTo(dg.Src, encodeResponse(m.txid, m.name, m.qtype, out))
}

// DefaultStaleFor is how long past TTL expiry a cached answer remains
// eligible for serve-stale when fresh resolution fails (RFC 8767-style).
const DefaultStaleFor = 30 * time.Second

// Resolver queries a server with retries and a TTL-honouring cache.
// Under overload it degrades instead of oscillating: expired cache
// entries are served stale when the server is unreachable or shedding,
// retransmissions are paced by jittered exponential backoff, and a
// token-bucket retry budget bounds how much retry traffic one client
// adds to a herd.
type Resolver struct {
	node   *netsim.Node
	server netip.AddrPort
	sock   *netsim.UDPSocket
	txid   uint16
	cache  map[cacheKey]cacheEntry
	wait   map[uint16]*pendingQuery

	// StaleFor bounds how long past expiry an entry may be served stale
	// (0 = DefaultStaleFor, negative = serve-stale disabled).
	StaleFor time.Duration
	// RetryBudget enables the retry token bucket: at most RetryBudget
	// tokens, refilled at RetryPerSec (default 1/s), one consumed per
	// retransmitted query. Zero = unlimited retries (the old behavior).
	RetryBudget  float64
	RetryPerSec  float64
	tokens       float64
	lastRefill   netsim.VTime
	tokensPrimed bool

	// Lookups/CacheHits count resolver activity; Retries counts
	// retransmitted queries, ServedStale answers served past TTL, and
	// BudgetDenied retries suppressed by an empty token bucket.
	Lookups, CacheHits uint64
	Retries            uint64
	ServedStale        uint64
	BudgetDenied       uint64
}

type cacheKey struct {
	name string
	t    RRType
}

type cacheEntry struct {
	recs    []Record
	expires netsim.VTime
}

type pendingQuery struct {
	wq   *netsim.WaitQueue
	done bool
	msg  parsedMsg
}

// NewResolver creates a resolver on node pointing at server.
func NewResolver(node *netsim.Node, server netip.Addr) *Resolver {
	r := &Resolver{
		node:   node,
		server: netip.AddrPortFrom(server, Port),
		cache:  make(map[cacheKey]cacheEntry),
		wait:   make(map[uint16]*pendingQuery),
	}
	r.sock = node.MustBindUDP(0)
	r.sock.Handler = func(dg netsim.Datagram) {
		m, err := parseMessage(dg.Payload)
		if err != nil || !m.response {
			return
		}
		if pq := r.wait[m.txid]; pq != nil && !pq.done {
			pq.done = true
			pq.msg = m
			pq.wq.WakeAll()
		}
	}
	return r
}

// staleFor returns the serve-stale window (≤0 disables).
func (r *Resolver) staleFor() time.Duration {
	if r.StaleFor == 0 {
		return DefaultStaleFor
	}
	return r.StaleFor
}

// takeToken refills and consumes from the retry bucket; true admits the
// retry. With RetryBudget == 0 retries are unlimited.
func (r *Resolver) takeToken(now netsim.VTime) bool {
	if r.RetryBudget <= 0 {
		return true
	}
	rate := r.RetryPerSec
	if rate <= 0 {
		rate = 1
	}
	if !r.tokensPrimed {
		r.tokens = r.RetryBudget
		r.tokensPrimed = true
	} else if dt := now - r.lastRefill; dt > 0 {
		r.tokens += rate * float64(dt) / float64(time.Second)
		if r.tokens > r.RetryBudget {
			r.tokens = r.RetryBudget
		}
	}
	r.lastRefill = now
	if r.tokens < 1 {
		r.BudgetDenied++
		return false
	}
	r.tokens--
	return true
}

// Invalidate drops the cached records for (name, t) — the hook a caller
// uses after a cached locator proves dead (connection refused/timed out)
// to force fresh resolution on the next lookup.
func (r *Resolver) Invalidate(name string, t RRType) {
	delete(r.cache, cacheKey{name, t})
}

// Lookup resolves (name, type), blocking p. Cached answers are served
// until their TTL expires; when resolution fails while a lapsed entry is
// still within the serve-stale window, the stale answer is returned
// rather than an error — re-contact degrades to possibly-outdated data
// instead of joining the herd hammering the nameserver.
func (r *Resolver) Lookup(p *netsim.Proc, name string, t RRType) ([]Record, error) {
	r.Lookups++
	key := cacheKey{name, t}
	var stale []Record
	if e, ok := r.cache[key]; ok {
		now := p.Now()
		if now < e.expires {
			r.CacheHits++
			return e.recs, nil
		}
		if sw := r.staleFor(); sw > 0 && now < e.expires+sw {
			stale = e.recs
		} else {
			delete(r.cache, key)
		}
	}
	rng := r.node.Net().Sim().Rand()
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			if !r.takeToken(p.Now()) {
				break
			}
			r.Retries++
			// Jittered backoff (±50% around 250ms·2^(attempt-1)) paces
			// the retry so a synchronized resolver herd de-correlates;
			// the shared sim RNG keeps it deterministic per seed.
			base := 250 * time.Millisecond << uint(attempt-1)
			p.Sleep(base/2 + time.Duration(float64(base)*rng.Float64()))
		}
		r.txid++
		txid := r.txid
		pq := &pendingQuery{wq: netsim.NewWaitQueue(r.node.Net().Sim())}
		r.wait[txid] = pq
		r.sock.SendTo(r.server, encodeQuery(txid, name, t))
		timedOut := false
		if !pq.done {
			timedOut = pq.wq.Wait(p, time.Second)
		}
		delete(r.wait, txid)
		if timedOut || !pq.done {
			continue
		}
		if pq.msg.retryAfter {
			// The server shed us: honor the backpressure and retry on
			// our backoff schedule (or fall back to stale below).
			continue
		}
		if pq.msg.nxdomain || len(pq.msg.answers) == 0 {
			return nil, ErrNoRecord
		}
		minTTL := pq.msg.answers[0].TTL
		for _, a := range pq.msg.answers {
			if a.TTL < minTTL {
				minTTL = a.TTL
			}
		}
		if minTTL > 0 {
			r.cache[key] = cacheEntry{recs: pq.msg.answers, expires: p.Now() + minTTL}
		}
		return pq.msg.answers, nil
	}
	if stale != nil {
		r.ServedStale++
		return stale, nil
	}
	return nil, ErrTimeout
}

// LookupHIP resolves the HIP RR for name.
func (r *Resolver) LookupHIP(p *netsim.Proc, name string) (*HIPRecord, error) {
	recs, err := r.Lookup(p, name, TypeHIP)
	if err != nil {
		return nil, err
	}
	return recs[0].HIP, nil
}

// LookupAddr resolves the A record for name.
func (r *Resolver) LookupAddr(p *netsim.Proc, name string) (netip.Addr, error) {
	recs, err := r.Lookup(p, name, TypeA)
	if err != nil {
		return netip.Addr{}, err
	}
	return recs[0].Addr, nil
}
