package hipdns

import (
	"net/netip"
	"testing"
	"time"
)

// FuzzParseMessage must never panic on arbitrary datagrams.
func FuzzParseMessage(f *testing.F) {
	f.Add(encodeQuery(1, "web1.cloud", TypeA))
	f.Add(encodeResponse(2, "db.cloud", TypeHIP, []Record{{
		Type: TypeHIP, TTL: time.Minute,
		HIP: &HIPRecord{HIT: netip.MustParseAddr("2001:10::1"), PublicKey: []byte{1, 2, 3}},
	}}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = parseMessage(data)
	})
}
