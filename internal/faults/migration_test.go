package faults_test

import (
	"net/netip"
	"testing"
	"time"

	"hipcloud/internal/faults"
	"hipcloud/internal/hip"
	"hipcloud/internal/hipsim"
	"hipcloud/internal/identity"
	"hipcloud/internal/netsim"
	"hipcloud/internal/simtcp"
)

// TestPartitionThenHealDuringMigration is the examples/migration scenario
// under a network partition: mid-stream, the endpoints are partitioned,
// the server migrates to a new locator while unreachable, and the
// partition heals. The HIP UPDATE exchange (retransmitted across the
// outage) re-establishes the new locator after the heal and the stream
// delivers every byte exactly once, in order.
func TestPartitionThenHealDuringMigration(t *testing.T) {
	idA := identity.MustGenerate(identity.AlgECDSA)
	idB := identity.MustGenerate(identity.AlgECDSA)
	locA := netip.MustParseAddr("10.0.0.1")
	locB := netip.MustParseAddr("10.0.1.1")
	locB2 := netip.MustParseAddr("10.0.2.1")

	s := netsim.New(1)
	n := netsim.NewNetwork(s)
	a := n.AddNode("a", 2, 1)
	b := n.AddNode("b", 2, 1)
	r := n.AddRouter("r")
	n.Connect(a, locA, r, netip.MustParseAddr("10.0.0.254"), netsim.Link{Latency: time.Millisecond})
	n.Connect(r, netip.MustParseAddr("10.0.1.254"), b, locB, netsim.Link{Latency: time.Millisecond})
	n.Connect(r, netip.MustParseAddr("10.0.2.254"), b, locB2, netsim.Link{Latency: time.Millisecond})
	a.AddDefaultRoute(netip.MustParseAddr("10.0.0.254"))
	b.AddDefaultRoute(netip.MustParseAddr("10.0.1.254"))
	r.AddRoute(netip.MustParsePrefix("10.0.0.0/24"), locA)

	reg := hipsim.NewRegistry()
	ha, _ := hip.NewHost(hip.Config{Identity: idA, Locator: locA})
	hb, _ := hip.NewHost(hip.Config{Identity: idB, Locator: locB})
	fa := hipsim.New(a, ha, reg)
	fb := hipsim.New(b, hb, reg)
	sa := simtcp.NewStack(a, fa)
	sb := simtcp.NewStack(b, fb)

	inj := faults.New(s)

	l := sb.MustListen(80)
	var serverGot []byte
	s.Spawn("server", func(p *netsim.Proc) {
		c, err := l.Accept(p, 0)
		if err != nil {
			return
		}
		buf := make([]byte, 64)
		for {
			n, err := c.Read(p, buf)
			if err != nil {
				return
			}
			serverGot = append(serverGot, buf[:n]...)
			if _, err := c.Write(p, buf[:n]); err != nil {
				return
			}
		}
	})
	var rounds int
	s.Spawn("client", func(p *netsim.Proc) {
		c, err := sa.Dial(p, idB.HIT(), 80, 10*time.Second)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		buf := make([]byte, 64)
		for i := 0; i < 10; i++ {
			msg := []byte{byte('0' + i)}
			if _, err := c.Write(p, msg); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
			nr, err := c.Read(p, buf)
			if err != nil || nr != 1 || buf[0] != msg[0] {
				t.Errorf("round %d: got %q err %v", i, buf[:nr], err)
				return
			}
			rounds++
			if i == 4 {
				// Partition the endpoints for 2 s (well inside HIP's
				// ~15.5 s UPDATE give-up window), migrate B while it is
				// unreachable, and let the heal deliver the retransmitted
				// UPDATE announcing the new locator.
				now := p.Now()
				inj.Partition("a|b", now, 2*time.Second,
					[]*netsim.Node{a}, []*netsim.Node{b})
				inj.At(now+500*time.Millisecond, "migrate b -> "+locB2.String(), func() {
					fb.MoveTo(locB2)
				})
				p.Sleep(3 * time.Second) // resume echoing after the heal
			}
		}
		c.Close()
	})
	s.Run(time.Minute)
	s.Shutdown()

	if rounds != 10 {
		t.Fatalf("rounds = %d, want 10 across partition+migration", rounds)
	}
	// Exactly once, in order: retransmissions across the partition must
	// not duplicate or reorder any byte at the application layer.
	if string(serverGot) != "0123456789" {
		t.Fatalf("server received %q, want \"0123456789\" exactly once each", serverGot)
	}
	// The association survived and now points at the post-heal locator.
	assoc, ok := ha.Association(idB.HIT())
	if !ok || assoc.PeerLocator != locB2 {
		t.Fatalf("peer locator = %+v, want %v after heal", assoc, locB2)
	}
}
