package faults_test

import (
	"fmt"
	"net/netip"
	"strings"
	"testing"
	"time"

	"hipcloud/internal/faults"
	"hipcloud/internal/netsim"
)

var (
	addrA = netip.MustParseAddr("10.0.0.1")
	addrB = netip.MustParseAddr("10.0.0.2")
)

// chaosTrace runs a fixed scenario under one seed: 200 packets spaced 5ms
// through an impairment window, a link flap and a partition, recording
// every delivery and every fault transition as one string.
func chaosTrace(seed int64) string {
	s := netsim.New(seed)
	n := netsim.NewNetwork(s)
	a := n.AddNode("a", 1, 1)
	b := n.AddNode("b", 1, 1)
	l := n.Connect(a, addrA, b, addrB, netsim.Link{Latency: time.Millisecond})
	inj := faults.New(s)
	inj.ImpairLink(l, "ab", 100*time.Millisecond, 300*time.Millisecond, faults.Impairment{
		DropProb:     0.2,
		CorruptProb:  0.2,
		DupProb:      0.1,
		ReorderProb:  0.2,
		ReorderDelay: 8 * time.Millisecond,
	})
	inj.FlapLink(l, "ab", 500*time.Millisecond, 50*time.Millisecond)
	inj.Partition("a|b", 700*time.Millisecond, 100*time.Millisecond,
		[]*netsim.Node{a}, []*netsim.Node{b})

	var sb strings.Builder
	bs := b.MustBindUDP(7)
	s.Spawn("rx", func(p *netsim.Proc) {
		for {
			dg, err := bs.RecvFrom(p, 2*time.Second)
			if err != nil {
				return
			}
			fmt.Fprintf(&sb, "%v %x\n", p.Now(), dg.Payload)
		}
	})
	as := a.MustBindUDP(0)
	dst := netip.AddrPortFrom(addrB, 7)
	s.Spawn("tx", func(p *netsim.Proc) {
		for i := 0; i < 200; i++ {
			as.SendTo(dst, []byte{byte(i), byte(i >> 8), 0xab})
			p.Sleep(5 * time.Millisecond)
		}
	})
	s.Run(0)
	for _, r := range inj.Log() {
		fmt.Fprintf(&sb, "%s\n", r)
	}
	return sb.String()
}

func TestChaosRunIsDeterministic(t *testing.T) {
	one := chaosTrace(42)
	two := chaosTrace(42)
	if one != two {
		t.Fatalf("same-seed chaos runs diverged:\n--- run1 ---\n%s--- run2 ---\n%s", one, two)
	}
	if !strings.Contains(one, "impair on: ab") || !strings.Contains(one, "heal: a|b") {
		t.Fatalf("fault log incomplete:\n%s", one)
	}
	// A different seed must actually change the packet-level outcome,
	// proving the impairment draws come from the sim RNG.
	if other := chaosTrace(43); other == one {
		t.Fatal("different seeds produced identical chaos traces")
	}
}

func TestPartitionBlocksBothWaysAndHeals(t *testing.T) {
	s := netsim.New(1)
	n := netsim.NewNetwork(s)
	a := n.AddNode("a", 1, 1)
	b := n.AddNode("b", 1, 1)
	c := n.AddNode("c", 1, 1)
	r := n.AddRouter("r")
	ra, rb, rc := netip.MustParseAddr("10.0.0.254"), netip.MustParseAddr("10.0.1.254"), netip.MustParseAddr("10.0.2.254")
	addrC := netip.MustParseAddr("10.0.2.1")
	n.Connect(a, addrA, r, ra, netsim.Link{Latency: time.Millisecond})
	n.Connect(b, addrB, r, rb, netsim.Link{Latency: time.Millisecond})
	n.Connect(c, addrC, r, rc, netsim.Link{Latency: time.Millisecond})
	a.AddDefaultRoute(ra)
	b.AddDefaultRoute(rb)
	c.AddDefaultRoute(rc)

	inj := faults.New(s)
	inj.Partition("a|b", 10*time.Millisecond, 50*time.Millisecond,
		[]*netsim.Node{a}, []*netsim.Node{b})

	recv := func(nd *netsim.Node, port uint16, got *[]string) {
		sock := nd.MustBindUDP(port)
		s.Spawn(nd.Name()+"/rx", func(p *netsim.Proc) {
			for {
				dg, err := sock.RecvFrom(p, 200*time.Millisecond)
				if err != nil {
					return
				}
				*got = append(*got, string(dg.Payload))
			}
		})
	}
	var atA, atB, atC []string
	recv(a, 7, &atA)
	recv(b, 7, &atB)
	recv(c, 7, &atC)
	send := func(from *netsim.Node, to netip.Addr, tag string) {
		sock := from.MustBindUDP(0)
		s.Spawn(from.Name()+"/tx/"+tag, func(p *netsim.Proc) {
			p.Sleep(20 * time.Millisecond) // inside the partition window
			sock.SendTo(netip.AddrPortFrom(to, 7), []byte(tag+"-during"))
			p.Sleep(60 * time.Millisecond) // after heal (t=80ms)
			sock.SendTo(netip.AddrPortFrom(to, 7), []byte(tag+"-after"))
		})
	}
	send(a, addrB, "a>b")
	send(b, addrA, "b>a")
	send(a, addrC, "a>c") // c is outside the partition: unaffected
	s.Run(0)

	if got := strings.Join(atB, ","); got != "a>b-after" {
		t.Fatalf("b received %q, want only the post-heal packet", got)
	}
	if got := strings.Join(atA, ","); got != "b>a-after" {
		t.Fatalf("a received %q, want only the post-heal packet", got)
	}
	if got := strings.Join(atC, ","); got != "a>c-during,a>c-after" {
		t.Fatalf("c received %q, want both packets (not partitioned)", got)
	}
}

func TestInjectorDownNodeAndStall(t *testing.T) {
	s := netsim.New(1)
	n := netsim.NewNetwork(s)
	a := n.AddNode("a", 1, 1)
	b := n.AddNode("b", 2, 1)
	n.Connect(a, addrA, b, addrB, netsim.Link{Latency: time.Millisecond})

	inj := faults.New(s)
	inj.DownNode(b, 10*time.Millisecond, 20*time.Millisecond)
	inj.StallCPU(b, 50*time.Millisecond, 30*time.Millisecond)

	var got int
	bs := b.MustBindUDP(7)
	s.Spawn("rx", func(p *netsim.Proc) {
		for {
			if _, err := bs.RecvFrom(p, 300*time.Millisecond); err != nil {
				return
			}
			got++
		}
	})
	var workDone netsim.VTime
	s.Spawn("worker", func(p *netsim.Proc) {
		p.Sleep(55 * time.Millisecond) // mid-stall
		b.CPU().Use(p, time.Millisecond)
		workDone = p.Now()
	})
	as := a.MustBindUDP(0)
	dst := netip.AddrPortFrom(addrB, 7)
	s.Spawn("tx", func(p *netsim.Proc) {
		p.Sleep(15 * time.Millisecond)
		as.SendTo(dst, []byte("lost")) // node down
		p.Sleep(20 * time.Millisecond)
		as.SendTo(dst, []byte("ok")) // node back up
	})
	s.Run(0)
	if got != 1 {
		t.Fatalf("delivered %d packets, want 1 (node was down for the first)", got)
	}
	// StallCPU holds both cores until t=80ms; the 1ms job queued at 55ms
	// cannot finish before the release.
	if workDone < 80*time.Millisecond {
		t.Fatalf("stalled work finished at %v, want ≥80ms", workDone)
	}
	var wantLog = []string{"node down: b", "node up: b", "cpu stall: b", "cpu release: b"}
	log := inj.Log()
	if len(log) != len(wantLog) {
		t.Fatalf("fault log %v, want %v", log, wantLog)
	}
	for i, r := range log {
		if r.What != wantLog[i] {
			t.Fatalf("fault log[%d] = %q, want %q", i, r.What, wantLog[i])
		}
	}
}
