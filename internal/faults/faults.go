// Package faults is a deterministic, virtual-time fault-injection layer
// for the netsim/cloud testbed: scheduled link flaps, network partitions
// (pairwise node groups; zone-level via the cloud package's inter-zone
// links), packet corruption/duplication/reordering windows, NAT mapping
// resets, node power events and CPU stalls.
//
// Every fault is scheduled on the simulation's event queue and every
// random choice draws from the simulation's seeded RNG, so a chaos run is
// exactly reproducible: same seed, same schedule, same packet-level
// outcome (the hiplint simdet contract). The injector keeps an ordered
// log of what fired when, for experiment reports.
//
// Buffer ownership of injected packets follows DESIGN.md §5: corruption
// delivers a freshly allocated bit-flipped copy and abandons the original
// in transit (the link cannot know whether the sender retains it, e.g. a
// HIP retransmission buffer, so it must neither mutate nor recycle it);
// duplicates likewise travel in their own allocations.
package faults

import (
	"fmt"
	"time"

	"hipcloud/internal/netsim"
)

// Record is one fault transition, for reports and determinism checks.
type Record struct {
	At   time.Duration
	What string
}

func (r Record) String() string { return fmt.Sprintf("%v %s", r.At, r.What) }

// Impairment parameterizes a link degradation window. Probabilities are
// per packet; draws come from the simulation RNG.
type Impairment struct {
	// DropProb drops the packet.
	DropProb float64
	// CorruptProb delivers a bit-flipped copy instead (dropped by any
	// integrity-checked receiver: ESP ICV, TLS MAC).
	CorruptProb float64
	// DupProb delivers the packet twice.
	DupProb float64
	// ReorderProb delays the packet by ReorderDelay, letting later
	// packets overtake it.
	ReorderProb  float64
	ReorderDelay time.Duration
}

// Injector schedules faults against one simulation. All methods must be
// called before or during the run from scheduler context; schedules
// registered after a fault's time fire immediately (netsim clamps past
// events to now).
type Injector struct {
	sim *netsim.Sim
	log []Record

	// rules holds active partition rules per managed node; each managed
	// node carries one composite FaultFilter walking its slice (insertion
	// order, never a map, so drop decisions are deterministic).
	rules map[*netsim.Node][]*partRule

	// onNodeDown callbacks fire (in registration order) whenever DownNode
	// powers a node off — the hook control-plane services use to learn of
	// crashes out of band, e.g. a rendezvous server unregistering the
	// dead host's locator instead of waiting out the registration TTL.
	onNodeDown []func(*netsim.Node)
}

// partRule blocks traffic between two node groups. Membership is decided
// at packet time by resolving the source address to its owning node, so
// rules survive address changes (migration) during the partition.
type partRule struct {
	blocked map[*netsim.Node]bool // peers this side must not hear from
}

// New creates an injector bound to sim.
func New(sim *netsim.Sim) *Injector {
	return &Injector{sim: sim, rules: make(map[*netsim.Node][]*partRule)}
}

// Log returns the ordered fault transitions so far.
func (in *Injector) Log() []Record { return in.log }

func (in *Injector) record(what string) {
	in.log = append(in.log, Record{At: in.sim.Now(), What: what})
}

// FlapLink takes a link down at `at` and back up dur later. A zero dur
// leaves it down for good (a cut cable).
func (in *Injector) FlapLink(l *netsim.Link, name string, at, dur time.Duration) {
	in.sim.At(at, func() {
		l.Down = true
		in.record("link down: " + name)
	})
	if dur > 0 {
		in.sim.At(at+dur, func() {
			l.Down = false
			in.record("link up: " + name)
		})
	}
}

// ImpairLink degrades a link with imp between at and at+dur. Windows must
// not overlap on the same link (the later install would clobber the
// earlier restore).
func (in *Injector) ImpairLink(l *netsim.Link, name string, at, dur time.Duration, imp Impairment) {
	in.sim.At(at, func() {
		rng := in.sim.Rand()
		l.Fault = func(pkt *netsim.Packet) netsim.FaultDecision {
			var fd netsim.FaultDecision
			if imp.DropProb > 0 && rng.Float64() < imp.DropProb {
				fd.Drop = true
				return fd
			}
			if imp.CorruptProb > 0 && rng.Float64() < imp.CorruptProb {
				fd.Corrupt = true
			}
			if imp.DupProb > 0 && rng.Float64() < imp.DupProb {
				fd.Duplicate = true
			}
			if imp.ReorderProb > 0 && rng.Float64() < imp.ReorderProb {
				fd.Delay = imp.ReorderDelay
			}
			return fd
		}
		in.record("impair on: " + name)
	})
	in.sim.At(at+dur, func() {
		l.Fault = nil
		in.record("impair off: " + name)
	})
}

// Partition severs all traffic between groups a and b from at until
// at+dur (zero dur: permanent). Nodes not in either group are unaffected;
// membership is tracked by node identity, so addresses gained during the
// partition (a migrated VM) stay partitioned too.
func (in *Injector) Partition(name string, at, dur time.Duration, a, b []*netsim.Node) {
	rule := &partRule{blocked: make(map[*netsim.Node]bool)}
	peer := &partRule{blocked: make(map[*netsim.Node]bool)}
	for _, n := range b {
		rule.blocked[n] = true
	}
	for _, n := range a {
		peer.blocked[n] = true
	}
	in.sim.At(at, func() {
		for _, n := range a {
			in.addRule(n, rule)
		}
		for _, n := range b {
			in.addRule(n, peer)
		}
		in.record("partition: " + name)
	})
	if dur > 0 {
		in.sim.At(at+dur, func() {
			for _, n := range a {
				in.dropRule(n, rule)
			}
			for _, n := range b {
				in.dropRule(n, peer)
			}
			in.record("heal: " + name)
		})
	}
}

func (in *Injector) addRule(n *netsim.Node, r *partRule) {
	if len(in.rules[n]) == 0 {
		net := n.Net()
		node := n
		node.FaultFilter = func(pkt *netsim.Packet) bool {
			src := net.NodeByAddr(pkt.Src.Addr())
			if src == nil {
				return true
			}
			for _, rule := range in.rules[node] {
				if rule.blocked[src] {
					return false
				}
			}
			return true
		}
	}
	in.rules[n] = append(in.rules[n], r)
}

func (in *Injector) dropRule(n *netsim.Node, r *partRule) {
	rs := in.rules[n]
	for i, x := range rs {
		if x == r {
			rs = append(rs[:i], rs[i+1:]...)
			break
		}
	}
	in.rules[n] = rs
	if len(rs) == 0 {
		n.FaultFilter = nil
	}
}

// OnNodeDown registers fn to run whenever DownNode takes a node down.
func (in *Injector) OnNodeDown(fn func(*netsim.Node)) {
	in.onNodeDown = append(in.onNodeDown, fn)
}

// DownNode powers a node off at `at` and back on dur later (zero dur:
// stays down). Processes on the node keep running; its traffic dies.
func (in *Injector) DownNode(n *netsim.Node, at, dur time.Duration) {
	in.sim.At(at, func() {
		n.Down = true
		in.record("node down: " + n.Name())
		for _, fn := range in.onNodeDown {
			fn(n)
		}
	})
	if dur > 0 {
		in.sim.At(at+dur, func() {
			n.Down = false
			in.record("node up: " + n.Name())
		})
	}
}

// ResetNAT flushes a NAT's mapping table at `at` (middlebox reboot).
func (in *Injector) ResetNAT(nat *netsim.NAT, name string, at time.Duration) {
	in.sim.At(at, func() {
		nat.Reset()
		in.record("nat reset: " + name)
	})
}

// StallCPU seizes every core of a node for dur starting at `at`: requests
// queued behind the stall see it as a hung backend, not slow service.
func (in *Injector) StallCPU(n *netsim.Node, at, dur time.Duration) {
	in.sim.At(at, func() {
		in.record("cpu stall: " + n.Name())
		for i := 0; i < n.CPU().Cores(); i++ {
			in.sim.Spawn(fmt.Sprintf("stall/%s/%d", n.Name(), i), func(p *netsim.Proc) {
				n.CPU().Stall(p, dur)
			})
		}
		in.sim.After(dur, func() { in.record("cpu release: " + n.Name()) })
	})
}

// At schedules an arbitrary fault callback, recorded under what — the
// escape hatch for scenario-specific events (e.g. cloud.Crash + restart
// sequences) that should appear in the fault log with everything else.
func (in *Injector) At(at time.Duration, what string, fn func()) {
	in.sim.At(at, func() {
		in.record(what)
		if fn != nil {
			fn()
		}
	})
}
