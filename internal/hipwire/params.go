package hipwire

import (
	"encoding/binary"
	"errors"
	"net/netip"
)

// Puzzle is the PUZZLE parameter (RFC 5201 §5.2.4): the responder's
// cookie challenge.
type Puzzle struct {
	K        uint8 // difficulty: number of leading zero bits required
	Lifetime uint8 // puzzle lifetime exponent
	Opaque   uint16
	I        uint64 // random value
}

// Marshal encodes the puzzle parameter body.
func (p Puzzle) Marshal() []byte {
	b := make([]byte, 12)
	b[0] = p.K
	b[1] = p.Lifetime
	binary.BigEndian.PutUint16(b[2:], p.Opaque)
	binary.BigEndian.PutUint64(b[4:], p.I)
	return b
}

// ParsePuzzle decodes a PUZZLE body.
func ParsePuzzle(b []byte) (Puzzle, error) {
	if len(b) < 12 {
		return Puzzle{}, ErrBadParam
	}
	return Puzzle{
		K: b[0], Lifetime: b[1],
		Opaque: binary.BigEndian.Uint16(b[2:]),
		I:      binary.BigEndian.Uint64(b[4:]),
	}, nil
}

// Solution is the SOLUTION parameter (RFC 5201 §5.2.5).
type Solution struct {
	K        uint8
	Lifetime uint8
	Opaque   uint16
	I        uint64
	J        uint64 // the initiator's answer
}

// Marshal encodes the solution parameter body.
func (s Solution) Marshal() []byte {
	b := make([]byte, 20)
	b[0] = s.K
	b[1] = s.Lifetime
	binary.BigEndian.PutUint16(b[2:], s.Opaque)
	binary.BigEndian.PutUint64(b[4:], s.I)
	binary.BigEndian.PutUint64(b[12:], s.J)
	return b
}

// ParseSolution decodes a SOLUTION body.
func ParseSolution(b []byte) (Solution, error) {
	if len(b) < 20 {
		return Solution{}, ErrBadParam
	}
	return Solution{
		K: b[0], Lifetime: b[1],
		Opaque: binary.BigEndian.Uint16(b[2:]),
		I:      binary.BigEndian.Uint64(b[4:]),
		J:      binary.BigEndian.Uint64(b[12:]),
	}, nil
}

// DiffieHellman is the DIFFIE_HELLMAN parameter: group and public value.
type DiffieHellman struct {
	Group  uint8
	Public []byte
}

// DH group ids (RFC 7401 registry; ECDH NIST P-256 is group 7).
const (
	DHGroupP256 uint8 = 7
	DHGroupP384 uint8 = 8
)

// Marshal encodes the DH parameter body.
func (d DiffieHellman) Marshal() []byte {
	b := make([]byte, 3+len(d.Public))
	b[0] = d.Group
	binary.BigEndian.PutUint16(b[1:], uint16(len(d.Public)))
	copy(b[3:], d.Public)
	return b
}

// ParseDiffieHellman decodes a DIFFIE_HELLMAN body.
func ParseDiffieHellman(b []byte) (DiffieHellman, error) {
	if len(b) < 3 {
		return DiffieHellman{}, ErrBadParam
	}
	n := int(binary.BigEndian.Uint16(b[1:]))
	if len(b) < 3+n {
		return DiffieHellman{}, ErrBadParam
	}
	return DiffieHellman{Group: b[0], Public: b[3 : 3+n : 3+n]}, nil
}

// CipherList is the HIP_CIPHER / ESP_TRANSFORM body: preference-ordered
// suite ids.
type CipherList []uint16

// Marshal encodes the suite list.
func (c CipherList) Marshal() []byte {
	b := make([]byte, 2*len(c))
	for i, id := range c {
		binary.BigEndian.PutUint16(b[2*i:], id)
	}
	return b
}

// ParseCipherList decodes a suite list body.
func ParseCipherList(b []byte) (CipherList, error) {
	if len(b)%2 != 0 {
		return nil, ErrBadParam
	}
	out := make(CipherList, len(b)/2)
	for i := range out {
		out[i] = binary.BigEndian.Uint16(b[2*i:])
	}
	return out, nil
}

// HostID is the HOST_ID parameter: the sender's public key and an optional
// domain identifier (FQDN). Both fields stay []byte end to end — parsed
// values alias the packet body, and marshaling never round-trips through
// string.
type HostID struct {
	Algorithm uint16
	HI        []byte // PKIX DER public key
	DI        []byte // domain identifier, may be empty
}

// Marshal encodes the HOST_ID body.
func (h HostID) Marshal() []byte {
	b := make([]byte, 6+len(h.HI)+len(h.DI))
	binary.BigEndian.PutUint16(b[0:], uint16(len(h.HI)))
	binary.BigEndian.PutUint16(b[2:], uint16(len(h.DI)))
	binary.BigEndian.PutUint16(b[4:], h.Algorithm)
	copy(b[6:], h.HI)
	copy(b[6+len(h.HI):], h.DI)
	return b
}

// ParseHostID decodes a HOST_ID body.
func ParseHostID(b []byte) (HostID, error) {
	if len(b) < 6 {
		return HostID{}, ErrBadParam
	}
	hiLen := int(binary.BigEndian.Uint16(b[0:]))
	diLen := int(binary.BigEndian.Uint16(b[2:]))
	if len(b) < 6+hiLen+diLen {
		return HostID{}, ErrBadParam
	}
	return HostID{
		Algorithm: binary.BigEndian.Uint16(b[4:]),
		HI:        b[6 : 6+hiLen : 6+hiLen],
		DI:        b[6+hiLen : 6+hiLen+diLen : 6+hiLen+diLen],
	}, nil
}

// ESPInfo is the ESP_INFO parameter (RFC 5202): SPI signaling.
type ESPInfo struct {
	KeymatIndex uint16
	OldSPI      uint32
	NewSPI      uint32
}

// Marshal encodes the ESP_INFO body.
func (e ESPInfo) Marshal() []byte {
	b := make([]byte, 12)
	binary.BigEndian.PutUint16(b[2:], e.KeymatIndex)
	binary.BigEndian.PutUint32(b[4:], e.OldSPI)
	binary.BigEndian.PutUint32(b[8:], e.NewSPI)
	return b
}

// ParseESPInfo decodes an ESP_INFO body.
func ParseESPInfo(b []byte) (ESPInfo, error) {
	if len(b) < 12 {
		return ESPInfo{}, ErrBadParam
	}
	return ESPInfo{
		KeymatIndex: binary.BigEndian.Uint16(b[2:]),
		OldSPI:      binary.BigEndian.Uint32(b[4:]),
		NewSPI:      binary.BigEndian.Uint32(b[8:]),
	}, nil
}

// Locator is one locator entry of the LOCATOR parameter (RFC 5206).
type Locator struct {
	Preferred bool
	Lifetime  uint32
	Addr      netip.Addr // stored 16-byte, v4 as v4-mapped
}

// MarshalLocators encodes a LOCATOR body.
func MarshalLocators(ls []Locator) []byte {
	b := make([]byte, 0, len(ls)*24)
	for _, l := range ls {
		e := make([]byte, 24)
		e[0] = 1  // traffic type: both signaling and data
		e[1] = 1  // locator type: ESP SPI + IPv6/IPv4-mapped
		e[2] = 16 // locator length in bytes
		if l.Preferred {
			e[3] = 1
		}
		binary.BigEndian.PutUint32(e[4:], l.Lifetime)
		var a16 [16]byte
		if l.Addr.Is4() {
			a16 = netip.AddrFrom16(l.Addr.As16()).As16()
		} else {
			a16 = l.Addr.As16()
		}
		copy(e[8:], a16[:])
		b = append(b, e...)
	}
	return b
}

// ParseLocators decodes a LOCATOR body.
func ParseLocators(b []byte) ([]Locator, error) {
	if len(b)%24 != 0 {
		return nil, ErrBadParam
	}
	out := make([]Locator, len(b)/24)
	for i := range out {
		e := b[i*24 : i*24+24]
		var a16 [16]byte
		copy(a16[:], e[8:24])
		addr := netip.AddrFrom16(a16)
		if addr.Is4In6() {
			addr = addr.Unmap()
		}
		out[i] = Locator{
			Preferred: e[3]&1 == 1,
			Lifetime:  binary.BigEndian.Uint32(e[4:]),
			Addr:      addr,
		}
	}
	return out, nil
}

// MarshalSeq encodes a SEQ body (update id).
func MarshalSeq(id uint32) []byte {
	b := make([]byte, 4)
	binary.BigEndian.PutUint32(b, id)
	return b
}

// ParseSeq decodes a SEQ body.
func ParseSeq(b []byte) (uint32, error) {
	if len(b) < 4 {
		return 0, ErrBadParam
	}
	return binary.BigEndian.Uint32(b), nil
}

// MarshalAck encodes an ACK body (peer update ids).
func MarshalAck(ids []uint32) []byte {
	b := make([]byte, 4*len(ids))
	for i, id := range ids {
		binary.BigEndian.PutUint32(b[4*i:], id)
	}
	return b
}

// ParseAck decodes an ACK body.
func ParseAck(b []byte) ([]uint32, error) {
	if len(b)%4 != 0 {
		return nil, ErrBadParam
	}
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.BigEndian.Uint32(b[4*i:])
	}
	return out, nil
}

// Signature is the HIP_SIGNATURE body.
type Signature struct {
	Algorithm uint16
	Sig       []byte
}

// Marshal encodes the signature body.
func (s Signature) Marshal() []byte {
	b := make([]byte, 2+len(s.Sig))
	binary.BigEndian.PutUint16(b, s.Algorithm)
	copy(b[2:], s.Sig)
	return b
}

// ParseSignature decodes a HIP_SIGNATURE body.
func ParseSignature(b []byte) (Signature, error) {
	if len(b) < 2 {
		return Signature{}, ErrBadParam
	}
	return Signature{
		Algorithm: binary.BigEndian.Uint16(b),
		Sig:       b[2:len(b):len(b)],
	}, nil
}

// Notification is the NOTIFICATION body.
type Notification struct {
	Type uint16
	Data []byte
}

// Notification message types (RFC 5201 §5.2.16, subset).
const (
	NotifyInvalidSyntax        uint16 = 7
	NotifyNoDHProposalChosen   uint16 = 14
	NotifyInvalidPuzzleSol     uint16 = 20
	NotifyAuthenticationFailed uint16 = 24
	NotifyChecksumFailed       uint16 = 26
	NotifyBlockedByPolicy      uint16 = 42
	NotifyI2Acknowledgement    uint16 = 16384
)

// Marshal encodes the notification body.
func (n Notification) Marshal() []byte {
	b := make([]byte, 4+len(n.Data))
	binary.BigEndian.PutUint16(b[2:], n.Type)
	copy(b[4:], n.Data)
	return b
}

// ParseNotification decodes a NOTIFICATION body.
func ParseNotification(b []byte) (Notification, error) {
	if len(b) < 4 {
		return Notification{}, ErrBadParam
	}
	return Notification{
		Type: binary.BigEndian.Uint16(b[2:]),
		Data: b[4:len(b):len(b)],
	}, nil
}

// MarshalAddr encodes a FROM / VIA_RVS body (one 16-byte address).
func MarshalAddr(a netip.Addr) []byte {
	a16 := a.As16()
	return a16[:]
}

// ParseAddr decodes a 16-byte address body.
func ParseAddr(b []byte) (netip.Addr, error) {
	if len(b) < 16 {
		return netip.Addr{}, ErrBadParam
	}
	var a16 [16]byte
	copy(a16[:], b)
	a := netip.AddrFrom16(a16)
	if a.Is4In6() {
		a = a.Unmap()
	}
	return a, nil
}

// ErrEncrypted is returned when an ENCRYPTED parameter cannot be decoded.
var ErrEncrypted = errors.New("hipwire: bad ENCRYPTED parameter")

// Encrypted is the ENCRYPTED parameter body: an IV and ciphertext whose
// plaintext is itself a parameter list.
type Encrypted struct {
	IV         []byte
	Ciphertext []byte
}

// Marshal encodes the ENCRYPTED body.
func (e Encrypted) Marshal() []byte {
	b := make([]byte, 5+len(e.IV)+len(e.Ciphertext))
	b[4] = byte(len(e.IV))
	copy(b[5:], e.IV)
	copy(b[5+len(e.IV):], e.Ciphertext)
	return b
}

// ParseEncrypted decodes the ENCRYPTED body.
func ParseEncrypted(b []byte) (Encrypted, error) {
	if len(b) < 5 {
		return Encrypted{}, ErrEncrypted
	}
	ivLen := int(b[4])
	if len(b) < 5+ivLen {
		return Encrypted{}, ErrEncrypted
	}
	return Encrypted{
		IV:         b[5 : 5+ivLen : 5+ivLen],
		Ciphertext: b[5+ivLen : len(b) : len(b)],
	}, nil
}
