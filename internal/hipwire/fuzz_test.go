package hipwire

import (
	"bytes"
	"testing"
)

// FuzzParse drives the packet parser with mutated inputs; it must never
// panic and any packet it accepts must re-marshal consistently.
func FuzzParse(f *testing.F) {
	p := &Packet{Type: I2, SenderHIT: hitA, ReceiverHIT: hitB}
	p.Add(ParamPuzzle, Puzzle{K: 10, I: 7}.Marshal())
	p.Add(ParamSolution, Solution{K: 10, I: 7, J: 9}.Marshal())
	p.Add(ParamHostID, HostID{Algorithm: 5, HI: bytes.Repeat([]byte{2}, 64), DI: []byte("x")}.Marshal())
	p.Add(ParamHMAC, bytes.Repeat([]byte{1}, 32))
	f.Add(p.Marshal())
	f.Add([]byte{})
	f.Add(make([]byte, HeaderLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, err := Parse(data)
		if err != nil {
			return
		}
		// Accepted packets must survive a marshal/parse round trip.
		again, err := Parse(pkt.Marshal())
		if err != nil {
			t.Fatalf("re-parse of accepted packet failed: %v", err)
		}
		if again.Type != pkt.Type || len(again.Params) != len(pkt.Params) {
			t.Fatalf("round trip changed packet: %v vs %v", again, pkt)
		}
	})
}
