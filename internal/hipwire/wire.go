// Package hipwire implements the HIP wire format of RFC 5201/7401: the
// fixed 40-byte HIP header, the ordered TLV parameter list, and typed
// encoders/decoders for the parameters used by the base exchange, mobility
// updates, rendezvous relaying and teardown.
package hipwire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// PacketType identifies a HIP control packet.
type PacketType uint8

// HIP packet types (RFC 5201 §5.3).
const (
	I1       PacketType = 1
	R1       PacketType = 2
	I2       PacketType = 3
	R2       PacketType = 4
	UPDATE   PacketType = 16
	NOTIFY   PacketType = 17
	CLOSE    PacketType = 18
	CLOSEACK PacketType = 19
)

func (t PacketType) String() string {
	switch t {
	case I1:
		return "I1"
	case R1:
		return "R1"
	case I2:
		return "I2"
	case R2:
		return "R2"
	case UPDATE:
		return "UPDATE"
	case NOTIFY:
		return "NOTIFY"
	case CLOSE:
		return "CLOSE"
	case CLOSEACK:
		return "CLOSE_ACK"
	}
	return fmt.Sprintf("HIP(%d)", uint8(t))
}

// Parameter type numbers (RFC 5201/5202/5204/5206 registries).
const (
	ParamESPInfo             uint16 = 65
	ParamR1Counter           uint16 = 128
	ParamLocator             uint16 = 193
	ParamPuzzle              uint16 = 257
	ParamSolution            uint16 = 321
	ParamSeq                 uint16 = 385
	ParamAck                 uint16 = 449
	ParamDiffieHellman       uint16 = 513
	ParamHIPCipher           uint16 = 579
	ParamEncrypted           uint16 = 641
	ParamHostID              uint16 = 705
	ParamEchoRequestSigned   uint16 = 897
	ParamNotification        uint16 = 832
	ParamEchoResponseSigned  uint16 = 961
	ParamESPTransform        uint16 = 4095
	ParamHMAC                uint16 = 61505
	ParamHMAC2               uint16 = 61569
	ParamSignature2          uint16 = 61633
	ParamSignature           uint16 = 61697
	ParamEchoRequestUnsigned uint16 = 63661
	ParamEchoResponseUnsign  uint16 = 63425
	ParamFrom                uint16 = 65498
	ParamRVSHMAC             uint16 = 65500
	ParamViaRVS              uint16 = 65502
)

// HeaderLen is the fixed HIP header size in bytes.
const HeaderLen = 40

// Version is the HIP protocol version emitted (RFC 5201 = 1).
const Version = 1

// MaxPacket bounds accepted packet sizes.
const MaxPacket = 64 * 1024

// Errors returned by parsing.
var (
	ErrShort       = errors.New("hipwire: truncated packet")
	ErrBadVersion  = errors.New("hipwire: unsupported version")
	ErrBadChecksum = errors.New("hipwire: checksum mismatch")
	ErrBadParam    = errors.New("hipwire: malformed parameter")
	ErrParamOrder  = errors.New("hipwire: parameters out of order")
	ErrMissing     = errors.New("hipwire: required parameter missing")
)

// Param is one TLV parameter.
type Param struct {
	Type uint16
	Data []byte
}

// Critical reports whether the parameter is critical (even type numbers
// must be understood by the recipient).
func (p Param) Critical() bool { return p.Type%2 == 0 }

// Packet is a HIP control packet.
type Packet struct {
	Type                   PacketType
	Controls               uint16
	SenderHIT, ReceiverHIT netip.Addr
	Params                 []Param
}

// Get returns the first parameter of type t.
func (p *Packet) Get(t uint16) (Param, bool) {
	for _, pr := range p.Params {
		if pr.Type == t {
			return pr, true
		}
	}
	return Param{}, false
}

// GetAll returns every parameter of type t.
func (p *Packet) GetAll(t uint16) []Param {
	var out []Param
	for _, pr := range p.Params {
		if pr.Type == t {
			out = append(out, pr)
		}
	}
	return out
}

// Add inserts a parameter, keeping Params sorted by type (the RFC 5201
// wire order); parameters of equal type keep their insertion order.
// Sorting here instead of at marshal time lets Marshal emit the slice
// directly, with no per-packet snapshot, sort or comparator closure.
func (p *Packet) Add(t uint16, data []byte) {
	i := len(p.Params)
	for i > 0 && p.Params[i-1].Type > t {
		i--
	}
	p.Params = append(p.Params, Param{})
	copy(p.Params[i+1:], p.Params[i:])
	p.Params[i] = Param{Type: t, Data: data}
}

func pad8(n int) int { return (n + 7) &^ 7 }

// Marshal encodes the packet and fills in the checksum. Params are
// already type-sorted — Add maintains the order, and Parse rejects
// out-of-order wire input — so hand-built packets must keep them sorted
// (use Add).
func (p *Packet) Marshal() []byte {
	size := HeaderLen
	for _, pr := range p.Params {
		size += pad8(4 + len(pr.Data))
	}
	b := make([]byte, size)
	b[0] = 59 // next header: IPPROTO_NONE
	b[1] = byte(size/8 - 1)
	b[2] = byte(p.Type) & 0x7f
	b[3] = Version<<4 | 0x1
	binary.BigEndian.PutUint16(b[6:], p.Controls)
	sh := p.SenderHIT.As16()
	rh := p.ReceiverHIT.As16()
	copy(b[8:24], sh[:])
	copy(b[24:40], rh[:])
	off := HeaderLen
	for _, pr := range p.Params {
		binary.BigEndian.PutUint16(b[off:], pr.Type)
		binary.BigEndian.PutUint16(b[off+2:], uint16(len(pr.Data)))
		copy(b[off+4:], pr.Data)
		off += pad8(4 + len(pr.Data))
	}
	cs := checksum(b)
	binary.BigEndian.PutUint16(b[4:], cs)
	return b
}

// Parse decodes and validates a packet (length, version, checksum,
// parameter ordering and bounds).
func Parse(b []byte) (*Packet, error) {
	if len(b) < HeaderLen {
		return nil, ErrShort
	}
	if len(b) > MaxPacket {
		return nil, fmt.Errorf("hipwire: packet exceeds %d bytes", MaxPacket)
	}
	totalLen := (int(b[1]) + 1) * 8
	if totalLen > len(b) {
		return nil, ErrShort
	}
	b = b[:totalLen]
	if b[3]>>4 != Version {
		return nil, ErrBadVersion
	}
	want := binary.BigEndian.Uint16(b[4:])
	// checksum skips the checksum field itself, so the packet is summed
	// in place — no zeroed scratch copy.
	if checksum(b) != want {
		return nil, ErrBadChecksum
	}
	var sh, rh [16]byte
	copy(sh[:], b[8:24])
	copy(rh[:], b[24:40])
	pkt := &Packet{
		Type:        PacketType(b[2] & 0x7f),
		Controls:    binary.BigEndian.Uint16(b[6:]),
		SenderHIT:   netip.AddrFrom16(sh),
		ReceiverHIT: netip.AddrFrom16(rh),
	}
	off := HeaderLen
	lastType := -1
	// One backing array for every parameter body: each Param.Data aliases
	// a capped window of the arena, so parsing costs two allocations
	// (arena + Params slice) regardless of parameter count. The packet
	// owns the arena; a caller retaining a parsed body past the packet's
	// lifetime pins the whole arena and should copy instead.
	arena := make([]byte, totalLen-HeaderLen)
	copy(arena, b[HeaderLen:totalLen])
	pkt.Params = make([]Param, 0, len(arena)/8)
	for off < totalLen {
		if off+4 > totalLen {
			return nil, ErrBadParam
		}
		t := binary.BigEndian.Uint16(b[off:])
		l := int(binary.BigEndian.Uint16(b[off+2:]))
		if off+4+l > totalLen {
			return nil, ErrBadParam
		}
		if int(t) < lastType {
			return nil, ErrParamOrder
		}
		lastType = int(t)
		lo, hi := off+4-HeaderLen, off+4+l-HeaderLen
		pkt.Params = append(pkt.Params, Param{Type: t, Data: arena[lo:hi:hi]})
		off += pad8(4 + l)
	}
	return pkt, nil
}

// checksum is the 16-bit one's-complement internet checksum; the
// checksum field (offset 4) is skipped, so callers sum packets in place.
func checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		if i == 4 {
			continue // checksum field itself
		}
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// MarshalForAuth encodes the packet including only parameters with type <
// limit, with the checksum zeroed and the length covering the truncated
// parameter set. Used as the input to HMAC (limit=ParamHMAC) and signature
// (limit=ParamSignature) computations.
func (p *Packet) MarshalForAuth(limit uint16) []byte {
	trimmed := &Packet{
		Type: p.Type, Controls: p.Controls,
		SenderHIT: p.SenderHIT, ReceiverHIT: p.ReceiverHIT,
	}
	for _, pr := range p.Params {
		if pr.Type < limit {
			trimmed.Params = append(trimmed.Params, pr)
		}
	}
	b := trimmed.Marshal()
	b[4], b[5] = 0, 0 // checksum excluded from auth input
	return b
}
