package hipwire

import (
	"bytes"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

var (
	hitA = netip.MustParseAddr("2001:10::aaaa:1")
	hitB = netip.MustParseAddr("2001:10::bbbb:2")
)

func TestPacketRoundTrip(t *testing.T) {
	p := &Packet{
		Type:        I2,
		Controls:    0x0001,
		SenderHIT:   hitA,
		ReceiverHIT: hitB,
	}
	p.Add(ParamSolution, Solution{K: 10, I: 42, J: 77}.Marshal())
	p.Add(ParamHostID, HostID{Algorithm: 5, HI: []byte{1, 2, 3}, DI: []byte("vm1.cloud")}.Marshal())
	p.Add(ParamHMAC, bytes.Repeat([]byte{0xAB}, 32))
	b := p.Marshal()
	out, err := Parse(b)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if out.Type != I2 || out.Controls != 0x0001 {
		t.Fatalf("header mismatch: %+v", out)
	}
	if out.SenderHIT != hitA || out.ReceiverHIT != hitB {
		t.Fatalf("HITs mismatch: %v %v", out.SenderHIT, out.ReceiverHIT)
	}
	if len(out.Params) != 3 {
		t.Fatalf("param count = %d", len(out.Params))
	}
	// Marshal sorts ascending: SOLUTION(321), HOST_ID(705), HMAC(61505).
	if out.Params[0].Type != ParamSolution || out.Params[2].Type != ParamHMAC {
		t.Fatalf("order: %v %v %v", out.Params[0].Type, out.Params[1].Type, out.Params[2].Type)
	}
}

func TestParseRejectsCorruption(t *testing.T) {
	p := &Packet{Type: I1, SenderHIT: hitA, ReceiverHIT: hitB}
	good := p.Marshal()

	if _, err := Parse(good[:HeaderLen-1]); err != ErrShort {
		t.Fatalf("short: %v", err)
	}
	bad := append([]byte(nil), good...)
	bad[3] = 0x21 // version 2
	if _, err := Parse(bad); err != ErrBadVersion {
		t.Fatalf("version: %v", err)
	}
	bad = append([]byte(nil), good...)
	bad[8] ^= 0xff // flips sender HIT, breaking checksum
	if _, err := Parse(bad); err != ErrBadChecksum {
		t.Fatalf("checksum: %v", err)
	}
	bad = append([]byte(nil), good...)
	bad[1] = 200 // claimed length way past buffer
	if _, err := Parse(bad); err != ErrShort {
		t.Fatalf("length overrun: %v", err)
	}
}

func TestParseRejectsOutOfOrderParams(t *testing.T) {
	p := &Packet{Type: UPDATE, SenderHIT: hitA, ReceiverHIT: hitB}
	p.Add(ParamSeq, MarshalSeq(1))
	p.Add(ParamAck, MarshalAck([]uint32{2}))
	b := p.Marshal()
	// Manually swap the two params (SEQ=385 len 4 pads to 8; total 8 each).
	seg1 := append([]byte(nil), b[HeaderLen:HeaderLen+8]...)
	seg2 := append([]byte(nil), b[HeaderLen+8:HeaderLen+16]...)
	copy(b[HeaderLen:], seg2)
	copy(b[HeaderLen+8:], seg1)
	// Fix checksum for the reordered packet.
	b[4], b[5] = 0, 0
	cs := checksum(b)
	b[4], b[5] = byte(cs>>8), byte(cs)
	if _, err := Parse(b); err != ErrParamOrder {
		t.Fatalf("err = %v, want ErrParamOrder", err)
	}
}

func TestMarshalForAuthExcludesLaterParams(t *testing.T) {
	p := &Packet{Type: R2, SenderHIT: hitA, ReceiverHIT: hitB}
	p.Add(ParamESPInfo, ESPInfo{NewSPI: 7}.Marshal())
	p.Add(ParamHMAC, bytes.Repeat([]byte{1}, 32))
	p.Add(ParamSignature, Signature{Algorithm: 5, Sig: []byte{9}}.Marshal())

	forHMAC := p.MarshalForAuth(ParamHMAC)
	forSig := p.MarshalForAuth(ParamSignature)
	if bytes.Contains(forHMAC, bytes.Repeat([]byte{1}, 32)) {
		t.Fatal("HMAC input contains the HMAC parameter")
	}
	if !bytes.Contains(forSig, bytes.Repeat([]byte{1}, 32)) {
		t.Fatal("signature input should contain the HMAC parameter")
	}
	if len(forSig) <= len(forHMAC) {
		t.Fatal("signature input should be longer than HMAC input")
	}
}

func TestPuzzleSolutionRoundTrip(t *testing.T) {
	pz := Puzzle{K: 12, Lifetime: 37, Opaque: 0x1234, I: 0xdeadbeefcafe}
	got, err := ParsePuzzle(pz.Marshal())
	if err != nil || got != pz {
		t.Fatalf("puzzle: %+v, %v", got, err)
	}
	sol := Solution{K: 12, Lifetime: 37, Opaque: 0x1234, I: 0xdeadbeefcafe, J: 99}
	gs, err := ParseSolution(sol.Marshal())
	if err != nil || gs != sol {
		t.Fatalf("solution: %+v, %v", gs, err)
	}
	if _, err := ParsePuzzle(make([]byte, 4)); err == nil {
		t.Fatal("short puzzle accepted")
	}
	if _, err := ParseSolution(make([]byte, 12)); err == nil {
		t.Fatal("short solution accepted")
	}
}

func TestDiffieHellmanRoundTrip(t *testing.T) {
	d := DiffieHellman{Group: DHGroupP256, Public: bytes.Repeat([]byte{7}, 65)}
	got, err := ParseDiffieHellman(d.Marshal())
	if err != nil || got.Group != d.Group || !bytes.Equal(got.Public, d.Public) {
		t.Fatalf("dh: %+v, %v", got, err)
	}
	// Truncated public key must be rejected.
	enc := d.Marshal()
	if _, err := ParseDiffieHellman(enc[:10]); err == nil {
		t.Fatal("truncated DH accepted")
	}
}

func TestHostIDRoundTrip(t *testing.T) {
	h := HostID{Algorithm: 7, HI: bytes.Repeat([]byte{3}, 91), DI: []byte("web1.example.org")}
	got, err := ParseHostID(h.Marshal())
	if err != nil || got.Algorithm != 7 || !bytes.Equal(got.HI, h.HI) || !bytes.Equal(got.DI, h.DI) {
		t.Fatalf("hostid: %+v, %v", got, err)
	}
}

func TestESPInfoRoundTrip(t *testing.T) {
	e := ESPInfo{KeymatIndex: 5, OldSPI: 0x11223344, NewSPI: 0x55667788}
	got, err := ParseESPInfo(e.Marshal())
	if err != nil || got != e {
		t.Fatalf("espinfo: %+v, %v", got, err)
	}
}

func TestLocatorsRoundTripV4AndV6(t *testing.T) {
	in := []Locator{
		{Preferred: true, Lifetime: 120, Addr: netip.MustParseAddr("10.1.2.3")},
		{Preferred: false, Lifetime: 60, Addr: netip.MustParseAddr("2001:db8::5")},
	}
	got, err := ParseLocators(MarshalLocators(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("locators: %+v != %+v", got, in)
	}
	if _, err := ParseLocators(make([]byte, 23)); err == nil {
		t.Fatal("ragged locator body accepted")
	}
}

func TestSeqAckRoundTrip(t *testing.T) {
	id, err := ParseSeq(MarshalSeq(0xCAFEBABE))
	if err != nil || id != 0xCAFEBABE {
		t.Fatalf("seq: %v %v", id, err)
	}
	ids, err := ParseAck(MarshalAck([]uint32{1, 2, 3}))
	if err != nil || len(ids) != 3 || ids[2] != 3 {
		t.Fatalf("ack: %v %v", ids, err)
	}
}

func TestNotificationRoundTrip(t *testing.T) {
	n := Notification{Type: NotifyInvalidPuzzleSol, Data: []byte("bad J")}
	got, err := ParseNotification(n.Marshal())
	if err != nil || got.Type != n.Type || !bytes.Equal(got.Data, n.Data) {
		t.Fatalf("notification: %+v, %v", got, err)
	}
}

func TestAddrParamRoundTrip(t *testing.T) {
	for _, s := range []string{"192.0.2.7", "2001:db8::1"} {
		a := netip.MustParseAddr(s)
		got, err := ParseAddr(MarshalAddr(a))
		if err != nil || got != a {
			t.Fatalf("addr %s: %v, %v", s, got, err)
		}
	}
}

func TestEncryptedRoundTrip(t *testing.T) {
	e := Encrypted{IV: bytes.Repeat([]byte{9}, 16), Ciphertext: []byte("sealed host id")}
	got, err := ParseEncrypted(e.Marshal())
	if err != nil || !bytes.Equal(got.IV, e.IV) || !bytes.Equal(got.Ciphertext, e.Ciphertext) {
		t.Fatalf("encrypted: %+v, %v", got, err)
	}
}

func TestCipherListRoundTrip(t *testing.T) {
	c := CipherList{2, 1, 4}
	got, err := ParseCipherList(c.Marshal())
	if err != nil || !reflect.DeepEqual(got, c) {
		t.Fatalf("ciphers: %v, %v", got, err)
	}
	if _, err := ParseCipherList([]byte{0}); err == nil {
		t.Fatal("odd cipher list accepted")
	}
}

// Property: any packet we marshal parses back identically (params sorted).
func TestPacketMarshalParseProperty(t *testing.T) {
	f := func(ptype uint8, controls uint16, bodies [][]byte) bool {
		p := &Packet{
			Type:        PacketType(ptype & 0x7f),
			Controls:    controls,
			SenderHIT:   hitA,
			ReceiverHIT: hitB,
		}
		types := []uint16{ParamESPInfo, ParamPuzzle, ParamSeq, ParamHostID, ParamHMAC}
		for i, body := range bodies {
			if len(body) > 512 {
				body = body[:512]
			}
			p.Add(types[i%len(types)], body)
		}
		out, err := Parse(p.Marshal())
		if err != nil {
			return false
		}
		if out.Type != p.Type || out.Controls != controls {
			return false
		}
		return len(out.Params) == len(p.Params)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the parser never panics on arbitrary input.
func TestParseNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Parse(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Fuzz-style: bit-flip valid packets; parser must reject or return sane data.
func TestParseBitFlips(t *testing.T) {
	p := &Packet{Type: R1, SenderHIT: hitA, ReceiverHIT: hitB}
	p.Add(ParamPuzzle, Puzzle{K: 10, I: 7}.Marshal())
	p.Add(ParamHostID, HostID{Algorithm: 5, HI: bytes.Repeat([]byte{2}, 64)}.Marshal())
	good := p.Marshal()
	for i := 0; i < len(good); i++ {
		for _, mask := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), good...)
			mut[i] ^= mask
			out, err := Parse(mut)
			if err != nil {
				continue
			}
			// Parsed despite the flip (flip in padding): must still bound params.
			for _, pr := range out.Params {
				if len(pr.Data) > len(mut) {
					t.Fatalf("param data longer than packet after flip at %d", i)
				}
			}
		}
	}
}

func BenchmarkMarshal(b *testing.B) {
	p := &Packet{Type: I2, SenderHIT: hitA, ReceiverHIT: hitB}
	p.Add(ParamESPInfo, ESPInfo{NewSPI: 7}.Marshal())
	p.Add(ParamSolution, Solution{K: 10, I: 42, J: 77}.Marshal())
	p.Add(ParamHostID, HostID{Algorithm: 5, HI: bytes.Repeat([]byte{3}, 294), DI: []byte("vm1")}.Marshal())
	p.Add(ParamHMAC, bytes.Repeat([]byte{1}, 32))
	p.Add(ParamSignature, Signature{Algorithm: 5, Sig: bytes.Repeat([]byte{2}, 256)}.Marshal())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Marshal()
	}
}

func BenchmarkParse(b *testing.B) {
	p := &Packet{Type: I2, SenderHIT: hitA, ReceiverHIT: hitB}
	p.Add(ParamSolution, Solution{K: 10, I: 42, J: 77}.Marshal())
	p.Add(ParamHostID, HostID{Algorithm: 5, HI: bytes.Repeat([]byte{3}, 294)}.Marshal())
	p.Add(ParamHMAC, bytes.Repeat([]byte{1}, 32))
	wire := p.Marshal()
	b.ReportAllocs()
	b.SetBytes(int64(len(wire)))
	for i := 0; i < b.N; i++ {
		if _, err := Parse(wire); err != nil {
			b.Fatal(err)
		}
	}
}
