// Package experiments wires the whole stack into the paper's evaluation:
// each exported Run* function regenerates one figure or table of
// "Secure Networking for Virtual Machines in the Cloud" (CLUSTER 2012)
// and returns both raw numbers and a rendered text table. The
// per-experiment index lives in DESIGN.md; paper-vs-measured results are
// recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"net/netip"
	"time"

	"hipcloud/internal/cloud"
	"hipcloud/internal/hip"
	"hipcloud/internal/hipsim"
	"hipcloud/internal/identity"
	"hipcloud/internal/keymat"
	"hipcloud/internal/netsim"
	"hipcloud/internal/proxy"
	"hipcloud/internal/rubis"
	"hipcloud/internal/secio"
	"hipcloud/internal/simtcp"
)

// Deployment is the paper's Figure 1 testbed: consumers -> load balancer
// (outside the cloud) -> web VMs -> one DB VM, with the inner hops running
// the scenario's transport.
type Deployment struct {
	Sim     *netsim.Sim
	Cloud   *cloud.Cloud
	Kind    secio.Kind
	ClientT *secio.Transport
	LBAddr  netip.Addr
	LBNode  *netsim.Node // nil unless WithLB
	LB      *proxy.Proxy
	Webs    []*rubis.WebServer
	WebAddr []netip.Addr // scenario addresses of the web tier
	// WebFabs holds each web VM's HIP fabric, index-aligned with Webs
	// (nil entries unless Kind == HIP). Fault schedules use them to follow
	// a migration with MoveTo.
	WebFabs []*hipsim.Fabric
	DB      *rubis.Database
	DBVM    *cloud.VM
	WebVMs  []*cloud.VM
	Reg     *hipsim.Registry // nil unless Kind == HIP
}

// DeployConfig parameterizes a deployment.
type DeployConfig struct {
	Profile cloud.Profile
	Kind    secio.Kind
	NumWeb  int
	DBCache bool
	UseRSA  bool // RSA-2048 host identities / certs (the paper's HIPL default)
	Seed    int64
	// WithLB deploys the reverse proxy tier (Figure 2). Without it,
	// clients hit web server 0 directly (the §V-B response-time setup).
	WithLB bool
	// Items/Users size the RUBiS dataset.
	Items, Users int
	// Zones is the number of availability zones (default 1). All VMs still
	// launch in zone 0; extra zones serve as migration / crash-recovery
	// targets for fault schedules.
	Zones int
	// HealthInterval enables the LB's periodic backend health probes.
	HealthInterval time.Duration
	// TLSSuites selects the tlslite record suites for SSL deployments.
	// Nil keeps the legacy AES-CTR channel and byte-identical wire
	// traffic (the committed goldens); tlslite.PreferredSuites runs the
	// same experiments on the modern AEAD record layer.
	TLSSuites []keymat.Suite
}

func (c *DeployConfig) fill() {
	if c.NumWeb <= 0 {
		c.NumWeb = 3
	}
	if c.Items <= 0 {
		c.Items = 2000
	}
	if c.Users <= 0 {
		c.Users = 400
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Profile.Name == "" {
		c.Profile = cloud.EC2
	}
}

// Deploy builds the testbed.
func Deploy(cfg DeployConfig) *Deployment {
	cfg.fill()
	s := netsim.New(cfg.Seed)
	n := netsim.NewNetwork(s)
	cl := cloud.New(n, cfg.Profile)
	for i := 1; i < cfg.Zones; i++ {
		cl.AddZone(string(rune('a' + i)))
	}
	tenant := &cloud.Tenant{Name: "tenant-a", VLAN: 100}

	d := &Deployment{Sim: s, Cloud: cl, Kind: cfg.Kind}
	d.DBVM = cl.Zones[0].Launch("db1", cfg.Profile.DBType, tenant)
	for i := 0; i < cfg.NumWeb; i++ {
		d.WebVMs = append(d.WebVMs, cl.Zones[0].Launch(fmt.Sprintf("web%d", i+1), cfg.Profile.WebType, tenant))
	}
	lbNode := cl.AttachExternal("haproxy", 8, 4)
	clientNode := cl.AttachExternal("clients", 16, 16)

	d.DB = rubis.Populate(cfg.Seed, cfg.Users, cfg.Items)
	d.DB.CacheEnabled = cfg.DBCache

	if cfg.Kind == secio.HIP {
		d.Reg = hipsim.NewRegistry()
	}
	alg := identity.AlgECDSA
	if cfg.UseRSA {
		alg = identity.AlgRSA
	}
	// mk builds the scenario transport for a node and returns the address
	// peers should dial it at, plus the HIP fabric when one exists.
	mk := func(node *netsim.Node) (*secio.Transport, netip.Addr, *hipsim.Fabric) {
		switch cfg.Kind {
		case secio.HIP:
			id := identity.MustGenerateDeterministic(alg, fmt.Sprintf("deploy/%d/%s", cfg.Seed, node.Name()))
			h, err := hip.NewHost(hip.Config{
				Identity: id, Locator: node.Addr(), Costs: cloud.HIPCosts(cfg.UseRSA),
			})
			if err != nil {
				panic(err)
			}
			f := hipsim.New(node, h, d.Reg)
			// The paper ran the experiments over LSIs ("all the
			// experiments involving HIP were carried out with LSIs").
			return &secio.Transport{Kind: secio.HIP, Stack: simtcp.NewStack(node, f)}, d.Reg.LSI(id.HIT()), f
		case secio.SSL:
			id := identity.MustGenerateDeterministic(alg, fmt.Sprintf("deploy/%d/%s", cfg.Seed, node.Name()))
			return &secio.Transport{
				Kind: secio.SSL, Identity: id, Costs: cloud.TLSCosts(cfg.UseRSA),
				Stack:     simtcp.NewStack(node, simtcp.NewPlainFabric(node)),
				Rand:      s.Rand(),
				TLSSuites: cfg.TLSSuites,
			}, node.Addr(), nil
		default:
			return &secio.Transport{
				Kind: secio.Basic, Stack: simtcp.NewStack(node, plainFabric(node)),
			}, node.Addr(), nil
		}
	}

	dbT, dbAddr, _ := mk(d.DBVM.Node)
	s.Spawn("db1", (&rubis.DBServer{DB: d.DB, Transport: dbT}).Run)

	for _, vm := range d.WebVMs {
		wt, waddr, wf := mk(vm.Node)
		listenT := wt
		if !cfg.WithLB {
			// §V-B setup: httperf hits the web server over plain HTTP;
			// only the web<->DB hop runs the scenario transport.
			switch cfg.Kind {
			case secio.SSL:
				listenT = &secio.Transport{Kind: secio.Basic, Stack: wt.Stack}
			case secio.HIP:
				listenT = &secio.Transport{
					Kind: secio.Basic, Stack: simtcp.NewStack(vm.Node, plainFabric(vm.Node)),
				}
			}
			waddr = vm.Node.Addr()
		}
		ws := &rubis.WebServer{
			Name:      vm.Name,
			Config:    rubis.DefaultWebConfig,
			Transport: listenT,
			DB:        rubis.NewDBClient(wt, dbAddr, rubis.DefaultWebConfig.DBPool),
		}
		d.Webs = append(d.Webs, ws)
		d.WebAddr = append(d.WebAddr, waddr)
		d.WebFabs = append(d.WebFabs, wf)
		s.Spawn(vm.Name, ws.Run)
	}

	// Consumers always speak plain HTTP (the proxy terminates security).
	d.ClientT = &secio.Transport{
		Kind: secio.Basic, Stack: simtcp.NewStack(clientNode, plainFabric(clientNode)),
	}

	if cfg.WithLB {
		front := &secio.Transport{
			Kind: secio.Basic, Stack: simtcp.NewStack(lbNode, plainFabric(lbNode)),
		}
		var back *secio.Transport
		switch cfg.Kind {
		case secio.Basic:
			back = front
		case secio.SSL:
			back = &secio.Transport{
				Kind: secio.SSL, Stack: front.Stack, Costs: cloud.TLSCosts(cfg.UseRSA),
				Rand:      s.Rand(),
				TLSSuites: cfg.TLSSuites,
			}
		case secio.HIP:
			back, _, _ = mk(lbNode)
		}
		d.LB = &proxy.Proxy{
			Name:           "haproxy",
			Front:          front,
			Back:           back,
			Policy:         proxy.RoundRobin,
			PerRequestCPU:  60 * time.Microsecond,
			HealthInterval: cfg.HealthInterval,
		}
		for i, a := range d.WebAddr {
			d.LB.AddBackend(d.Webs[i].Name, a, rubis.WebPort)
		}
		s.Spawn("haproxy", d.LB.Run)
		d.LBAddr = lbNode.Addr()
		d.LBNode = lbNode
	}
	return d
}

// plainFabric builds the unprotected fabric with the baseline per-packet
// kernel cost, so "basic" is cheap but not free.
func plainFabric(node *netsim.Node) *simtcp.PlainFabric {
	f := simtcp.NewPlainFabric(node)
	f.PerPacketCost = cloud.PlainPerPacket
	return f
}

// FrontAddr returns the address consumers should dial: the LB when
// deployed, otherwise the first web server (which consumers reach over
// plain HTTP only when the scenario is Basic — the §V-B setup keeps the
// client leg plain regardless, so direct deployments expose web0 through
// a tiny plain front in front of it).
func (d *Deployment) FrontAddr() (netip.Addr, uint16) {
	if d.LB != nil {
		return d.LBAddr, proxy.FrontPort
	}
	return d.WebAddr[0], rubis.WebPort
}
