package experiments

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"hipcloud/internal/secio"
	"hipcloud/internal/tlslite"
)

// checkGolden compares got against the committed testdata golden. Running
// the tests with UPDATE_GOLDEN=1 rewrites the files instead (review the
// diff — a golden change means experiment outputs moved).
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s — nondeterminism or a behavior change.\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestChaosGoldenShortSeed1 pins the exact table `benchcloud -run chaos
// -short -seed 1` prints: any nondeterminism (across processes, via the
// committed golden, or within one, via the immediate re-run) or
// unintended behavior change fails the test.
func TestChaosGoldenShortSeed1(t *testing.T) {
	cfg := ChaosConfig{Duration: 12 * time.Second, Seed: 1}
	_, tbl := RunChaos(cfg)
	got := tbl.String()
	checkGolden(t, "chaos_short_seed1.golden", got)
	_, tbl2 := RunChaos(cfg)
	if tbl2.String() != got {
		t.Fatalf("chaos replay diverged in-process:\n%s\nvs\n%s", got, tbl2)
	}
}

// TestFig2GoldenShortSeed1 pins the short fig2 sweep at seed 1 (the
// committed golden doubles as a cross-process determinism check; the
// in-process half is covered by the cheaper chaos test above).
func TestFig2GoldenShortSeed1(t *testing.T) {
	_, tbl := RunFig2(Fig2Config{
		Duration: 8 * time.Second, Warmup: time.Second,
		Clients: []int{4, 50}, Seed: 1,
	})
	checkGolden(t, "fig2_short_seed1.golden", tbl.String())
}

// TestFig2GoldenShortAEADSeed1 pins the same sweep with the ssl column
// negotiated onto the modern AEAD record suites: the negotiation and the
// GCM/ChaCha record paths are exactly as deterministic as the legacy
// channel, and the experiment harness needs no other change to run the
// paper's workload on 2026 primitives.
func TestFig2GoldenShortAEADSeed1(t *testing.T) {
	pts, tbl := RunFig2(Fig2Config{
		Duration: 8 * time.Second, Warmup: time.Second,
		Clients: []int{4, 50}, Seed: 1,
		TLSSuites: tlslite.PreferredSuites,
	})
	// Guard against the failure mode where every AEAD handshake errors
	// out and the ssl column silently pins a column of zeros.
	for _, p := range pts {
		if p.Kind == secio.SSL && p.Throughput == 0 {
			t.Fatalf("ssl column dead at %d clients — AEAD handshakes failing", p.Clients)
		}
	}
	checkGolden(t, "fig2_short_aead_seed1.golden", tbl.String())
}
