package experiments

import (
	"testing"
	"time"
)

// stormShortCfg mirrors `benchcloud -run storm -short -seed 1`.
var stormShortCfg = StormConfig{
	Duration: 12 * time.Second, Servers: 4, Clients: 48, Seed: 1,
}

// TestStormGoldenShortSeed1 pins the exact table `benchcloud -run storm
// -short -seed 1` prints (cross-process determinism via the committed
// golden, in-process via the immediate replay).
func TestStormGoldenShortSeed1(t *testing.T) {
	_, tbl := RunStorm(stormShortCfg)
	got := tbl.String()
	checkGolden(t, "storm_short_seed1.golden", got)
	_, tbl2 := RunStorm(stormShortCfg)
	if tbl2.String() != got {
		t.Fatalf("storm replay diverged in-process:\n%s\nvs\n%s", got, tbl2)
	}
}

// TestStormShapeShortSeed1 checks the properties the experiment exists to
// demonstrate, independent of exact numbers: every tier re-contacts after
// the evacuation, HIP's re-contact tail stays bounded, retransmit
// amplification stays bounded, and nobody collapses outright.
func TestStormShapeShortSeed1(t *testing.T) {
	results, _ := RunStorm(stormShortCfg)
	if len(results) != 3 {
		t.Fatalf("expected 3 scenarios, got %d", len(results))
	}
	for _, r := range results {
		if r.ContactsOK < stormShortCfg.Clients {
			t.Errorf("%v: only %d successful contacts for %d clients — herd never formed",
				r.Kind, r.ContactsOK, stormShortCfg.Clients)
		}
		if !r.Dipped {
			t.Errorf("%v: evacuation did not dip connectivity — schedule not biting", r.Kind)
		}
		if r.Recovery <= 0 {
			t.Errorf("%v: herd never recovered to 95%% connected after the evacuation", r.Kind)
		}
		if r.Recontacts == 0 {
			t.Errorf("%v: no client completed an outage->reconnect cycle", r.Kind)
		}
		if r.RecontactP99 <= 0 || r.RecontactP99 > stormShortCfg.Duration/2 {
			t.Errorf("%v: re-contact p99 %v outside (0, D/2] — tail not bounded",
				r.Kind, r.RecontactP99)
		}
	}
	// HIP-specific: mobility (UPDATE) should carry part of the herd through
	// the migration without a visible outage, so HIP must see strictly
	// fewer disrupted clients than the DNS-bound tiers.
	var hip, basic StormResult
	for _, r := range results {
		switch r.Kind.String() {
		case "hip":
			hip = r
		case "basic":
			basic = r
		}
	}
	if hip.Recontacts >= basic.Recontacts {
		t.Errorf("hip disrupted %d clients vs basic %d — UPDATE storm not masking the migration",
			hip.Recontacts, basic.Recontacts)
	}
	// The jittered, capped backoff must keep retransmit amplification
	// bounded: well under one retransmission per client on average even
	// through the loss window.
	if hip.Retransmits > uint64(stormShortCfg.Clients)*4 {
		t.Errorf("hip retransmits %d exceed 4x client count — backoff not damping the herd",
			hip.Retransmits)
	}
}

// TestStormSeedsDiffer guards the seed plumbing: two seeds must not
// produce byte-identical tables (if they do, the seed is being ignored
// and the "deterministic per seed" claim is vacuous).
func TestStormSeedsDiffer(t *testing.T) {
	cfg2 := stormShortCfg
	cfg2.Seed = 2
	_, tbl1 := RunStorm(stormShortCfg)
	_, tbl2 := RunStorm(cfg2)
	if tbl1.String() == tbl2.String() {
		t.Fatal("seed 1 and seed 2 produced identical storm tables — seed not plumbed through")
	}
}
