package experiments

import (
	"time"

	"hipcloud/internal/cloud"
	"hipcloud/internal/keymat"
	"hipcloud/internal/metrics"
	"hipcloud/internal/rubis"
	"hipcloud/internal/secio"
	"hipcloud/internal/workload"
)

// Fig2Clients are the concurrency levels on the paper's Figure 2 x-axis.
var Fig2Clients = []int{2, 3, 4, 6, 10, 20, 30, 50}

// Fig2Point is one (scenario, clients) measurement.
type Fig2Point struct {
	Kind       secio.Kind
	Clients    int
	Throughput float64 // successful requests/second
	MeanRT     time.Duration
	Errors     int
}

// Fig2Config parameterizes the Figure 2 reproduction.
type Fig2Config struct {
	Profile  cloud.Profile
	Duration time.Duration // per point (virtual); default 30s
	Warmup   time.Duration // default 3s
	Clients  []int
	Seed     int64
	// TLSSuites runs the ssl column on an explicit tlslite suite list
	// (nil = the paper-era legacy channel).
	TLSSuites []keymat.Suite
}

func (c *Fig2Config) fill() {
	if c.Duration <= 0 {
		c.Duration = 30 * time.Second
	}
	if c.Warmup <= 0 {
		c.Warmup = 3 * time.Second
	}
	if len(c.Clients) == 0 {
		c.Clients = Fig2Clients
	}
	if c.Profile.Name == "" {
		c.Profile = cloud.EC2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// RunFig2Point measures one cell of Figure 2: the RUBiS service behind
// the round-robin proxy, driven by `clients` concurrent closed-loop
// clients issuing random GETs, with the inner hops on the scenario
// transport and no database caching (as in the paper).
func RunFig2Point(cfg Fig2Config, kind secio.Kind, clients int) Fig2Point {
	cfg.fill()
	d := Deploy(DeployConfig{
		Profile:   cfg.Profile,
		Kind:      kind,
		NumWeb:    3,
		DBCache:   false,
		UseRSA:    true,
		Seed:      cfg.Seed,
		WithLB:    true,
		TLSSuites: cfg.TLSSuites,
	})
	mix := rubis.NewMix(cfg.Seed+int64(clients), d.DB.NumItems(), d.DB.NumUsers())
	addr, port := d.FrontAddr()
	w := &workload.ClosedLoop{
		Transport: d.ClientT,
		Target:    addr,
		Port:      port,
		Clients:   clients,
		Duration:  cfg.Duration,
		Warmup:    cfg.Warmup,
		NextPath:  mix.Next,
		Timeout:   8 * time.Second,
	}
	res := w.Run(d.Sim)
	d.Sim.Run(cfg.Duration + 10*time.Second)
	d.Sim.Shutdown()
	return Fig2Point{
		Kind:       kind,
		Clients:    clients,
		Throughput: res.Throughput(),
		MeanRT:     res.Latency.Mean(),
		Errors:     res.Errors,
	}
}

// RunFig2 regenerates Figure 2: throughput vs concurrent clients for the
// basic, HIP and SSL scenarios.
func RunFig2(cfg Fig2Config) ([]Fig2Point, *metrics.Table) {
	cfg.fill()
	var points []Fig2Point
	tbl := metrics.NewTable(
		"Figure 2 — RUBiS throughput (req/s) vs concurrent clients ("+cfg.Profile.Name+")",
		"clients", "basic", "hip", "ssl")
	for _, n := range cfg.Clients {
		row := make(map[secio.Kind]Fig2Point, 3)
		for _, kind := range []secio.Kind{secio.Basic, secio.HIP, secio.SSL} {
			pt := RunFig2Point(cfg, kind, n)
			points = append(points, pt)
			row[kind] = pt
		}
		tbl.Row(n, row[secio.Basic].Throughput, row[secio.HIP].Throughput, row[secio.SSL].Throughput)
	}
	tbl.Caption = "paper: basic clearly ahead at high concurrency; HIP ≈ SSL, HIP slightly lower at 50 clients (LSI translation)"
	return points, tbl
}
