package experiments

import (
	"testing"
	"time"

	"hipcloud/internal/cloud"
	"hipcloud/internal/identity"
	"hipcloud/internal/secio"
)

// shortFig2 keeps unit-test runtime reasonable.
var shortFig2 = Fig2Config{Duration: 8 * time.Second, Warmup: 1 * time.Second, Clients: []int{4, 50}}

func TestFig2ShapeBasicWins(t *testing.T) {
	var byKind = map[secio.Kind]float64{}
	for _, kind := range []secio.Kind{secio.Basic, secio.HIP, secio.SSL} {
		pt := RunFig2Point(shortFig2, kind, 50)
		if pt.Throughput <= 0 {
			t.Fatalf("%v: zero throughput (errors=%d)", kind, pt.Errors)
		}
		byKind[kind] = pt.Throughput
		t.Logf("%v @50 clients: %.1f req/s, mean RT %v, errors %d", kind, pt.Throughput, pt.MeanRT, pt.Errors)
	}
	if byKind[secio.Basic] <= byKind[secio.HIP] || byKind[secio.Basic] <= byKind[secio.SSL] {
		t.Fatalf("basic (%.1f) must beat hip (%.1f) and ssl (%.1f)",
			byKind[secio.Basic], byKind[secio.HIP], byKind[secio.SSL])
	}
	ratio := byKind[secio.HIP] / byKind[secio.SSL]
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("hip/ssl ratio %.2f outside comparable band", ratio)
	}
}

func TestFig2ThroughputGrowsThenSaturates(t *testing.T) {
	t2 := RunFig2Point(shortFig2, secio.Basic, 2)
	t20 := RunFig2Point(shortFig2, secio.Basic, 30)
	t.Logf("basic: 2 clients %.1f req/s, 30 clients %.1f req/s", t2.Throughput, t20.Throughput)
	if t20.Throughput <= t2.Throughput {
		t.Fatalf("throughput did not grow with concurrency: %.1f -> %.1f", t2.Throughput, t20.Throughput)
	}
}

func TestResponseTimesOrdering(t *testing.T) {
	// Long enough that the ~2ms secured deltas clear the jitter noise.
	cfg := RTConfig{Duration: 40 * time.Second, Warmup: 4 * time.Second}
	pts, tbl := RunResponseTimes(cfg)
	t.Logf("\n%s", tbl)
	var basic, hip, ssl time.Duration
	for _, p := range pts {
		switch p.Kind {
		case secio.Basic:
			basic = p.Mean
		case secio.HIP:
			hip = p.Mean
		case secio.SSL:
			ssl = p.Mean
		}
		if p.Completed == 0 {
			t.Fatalf("%v: no completed requests", p.Kind)
		}
	}
	// The paper's headline here: all three "largely comparable", with
	// HIP slightly above SSL (LSI translation). HIP must be the slowest;
	// basic and SSL must stay within a few percent of each other (the
	// model puts SSL marginally below basic, a 2%-scale deviation noted
	// in EXPERIMENTS.md).
	if hip <= basic || hip <= ssl {
		t.Fatalf("hip (%v) should be slowest: basic=%v ssl=%v", hip, basic, ssl)
	}
	spread := float64(hip-basic) / float64(basic)
	if spread > 0.15 {
		t.Fatalf("scenarios not comparable: spread %.1f%%", spread*100)
	}
	if ssl > basic+basic/10 || basic > ssl+ssl/10 {
		t.Fatalf("basic (%v) and ssl (%v) diverged beyond noise", basic, ssl)
	}
}

func TestFig3Shape(t *testing.T) {
	cfg := Fig3Config{Bytes: 2 << 20, Pings: 8}
	pts, tbl, err := RunFig3(cfg)
	if err != nil {
		t.Fatalf("fig3: %v", err)
	}
	t.Logf("\n%s", tbl)
	get := func(m ConnMode) Fig3Point {
		for _, p := range pts {
			if p.Mode == m {
				return p
			}
		}
		t.Fatalf("missing mode %v", m)
		return Fig3Point{}
	}
	ipv4 := get(ModeIPv4)
	hit := get(ModeHITIPv4)
	lsi := get(ModeLSIIPv4)
	ter := get(ModeTeredo)
	hitT := get(ModeHITTeredo)

	// Bandwidth: IPv4 fastest, HIT below it, Teredo modes clearly lower.
	if ipv4.Mbps <= hit.Mbps {
		t.Errorf("IPv4 (%.1f) should beat HIT (%.1f)", ipv4.Mbps, hit.Mbps)
	}
	if hit.Mbps <= ter.Mbps {
		t.Errorf("HIT(IPv4) (%.1f) should beat Teredo (%.1f)", hit.Mbps, ter.Mbps)
	}
	if ter.Mbps <= hitT.Mbps*0.5 {
		t.Logf("teredo %.1f vs hit-teredo %.1f", ter.Mbps, hitT.Mbps)
	}
	// RTT: IPv4 < HIT < LSI; Teredo worst.
	if ipv4.MeanRTT >= hit.MeanRTT {
		t.Errorf("IPv4 RTT (%v) should beat HIT (%v)", ipv4.MeanRTT, hit.MeanRTT)
	}
	if hit.MeanRTT >= lsi.MeanRTT {
		t.Errorf("HIT RTT (%v) should beat LSI (%v) — translation penalty", hit.MeanRTT, lsi.MeanRTT)
	}
	if ter.MeanRTT <= lsi.MeanRTT {
		t.Errorf("Teredo RTT (%v) should be worst (lsi=%v)", ter.MeanRTT, lsi.MeanRTT)
	}
}

func TestBEXCostECCBelowRSA(t *testing.T) {
	rsa, err := RunBEX(identity.AlgRSA, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	ecc, err := RunBEX(identity.AlgECDSA, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("RSA: wall=%v init=%v resp=%v", rsa.WallLatency, rsa.InitCPU, rsa.RespCPU)
	t.Logf("ECC: wall=%v init=%v resp=%v", ecc.WallLatency, ecc.InitCPU, ecc.RespCPU)
	if ecc.RespCPU >= rsa.RespCPU {
		t.Fatalf("ECC responder CPU (%v) should undercut RSA (%v) — the paper's ECC remark", ecc.RespCPU, rsa.RespCPU)
	}
	if rsa.WallLatency <= 0 || ecc.WallLatency <= 0 {
		t.Fatal("zero BEX latency")
	}
}

func TestPuzzleSweepGrowsExponentially(t *testing.T) {
	pts, tbl := RunPuzzleSweep([]uint8{4, 8, 12}, 12, 1)
	t.Logf("\n%s", tbl)
	if len(pts) != 3 {
		t.Fatal("missing points")
	}
	if pts[1].MeanAttempts < 4*pts[0].MeanAttempts {
		t.Fatalf("K=8 attempts (%.0f) not ≫ K=4 (%.0f)", pts[1].MeanAttempts, pts[0].MeanAttempts)
	}
	if pts[2].MeanAttempts < 4*pts[1].MeanAttempts {
		t.Fatalf("K=12 attempts (%.0f) not ≫ K=8 (%.0f)", pts[2].MeanAttempts, pts[1].MeanAttempts)
	}
}

func TestPrivateCloudCrossCheck(t *testing.T) {
	// The OpenNebula profile must reproduce the same ordering (the
	// paper's §V-A validity cross-check).
	cfg := shortFig2
	cfg.Profile = cloud.OpenNebula
	basic := RunFig2Point(cfg, secio.Basic, 50)
	hip := RunFig2Point(cfg, secio.HIP, 50)
	t.Logf("opennebula: basic %.1f, hip %.1f req/s", basic.Throughput, hip.Throughput)
	if basic.Throughput <= hip.Throughput {
		t.Fatalf("private cloud ordering broken: basic %.1f <= hip %.1f", basic.Throughput, hip.Throughput)
	}
}

func TestDoSAdaptivePuzzlesThrottleAttack(t *testing.T) {
	fixed, err := RunDoS(DoSConfig{Adaptive: false, Duration: 12 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := RunDoS(DoSConfig{Adaptive: true, Duration: 12 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fixed: hostile=%d legitOK=%d lat=%v cpu=%v", fixed.AttackerBEX, fixed.LegitOK, fixed.LegitLatency, fixed.ResponderBusy)
	t.Logf("adaptive: hostile=%d legitOK=%d lat=%v cpu=%v finalK=%d", adaptive.AttackerBEX, adaptive.LegitOK, adaptive.LegitLatency, adaptive.ResponderBusy, adaptive.FinalK)
	if adaptive.AttackerBEX >= fixed.AttackerBEX {
		t.Fatalf("adaptive puzzles did not reduce hostile BEX rate: %d vs %d", adaptive.AttackerBEX, fixed.AttackerBEX)
	}
	if adaptive.ResponderBusy >= fixed.ResponderBusy {
		t.Fatalf("adaptive puzzles did not relieve responder CPU: %v vs %v", adaptive.ResponderBusy, fixed.ResponderBusy)
	}
	if adaptive.FinalK <= 1 {
		t.Fatalf("difficulty controller never engaged: K=%d", adaptive.FinalK)
	}
	if adaptive.LegitOK == 0 {
		t.Fatal("legitimate client starved out entirely under adaptive puzzles")
	}
}

// TestChaosDeterministicAndHIPRecovers pins the tentpole contract: the
// same seed reproduces the chaos run byte-for-byte, and only HIP brings
// the migrated web VM back (the paper's UPDATE-survives-locator-change
// argument).
func TestChaosDeterministicAndHIPRecovers(t *testing.T) {
	cfg := ChaosConfig{Duration: 10 * time.Second, Clients: 4, Seed: 3}
	res1, tbl1 := RunChaos(cfg)
	_, tbl2 := RunChaos(cfg)
	if tbl1.String() != tbl2.String() {
		t.Fatalf("same-seed chaos runs differ:\n%s\nvs\n%s", tbl1, tbl2)
	}
	for _, r := range res1 {
		t.Logf("%v: ok=%d failed=%d outage=%v recovery=%v", r.Kind, r.Completed, r.Failed, r.WorstOutage, r.WebRecovery)
		if r.Completed == 0 {
			t.Fatalf("%v: no requests completed", r.Kind)
		}
		if r.Kind == secio.HIP {
			if r.WebRecovery <= 0 {
				t.Fatalf("hip: migrated web VM never recovered")
			}
		} else if r.WebRecovery != 0 {
			t.Fatalf("%v: IP-bound backend recovered after migration (recovery=%v)", r.Kind, r.WebRecovery)
		}
	}
	_, tbl3 := RunChaos(ChaosConfig{Duration: 10 * time.Second, Clients: 4, Seed: 4})
	if tbl1.String() == tbl3.String() {
		t.Fatal("different seeds produced identical chaos tables")
	}
}
