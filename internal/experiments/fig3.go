package experiments

import (
	"fmt"
	"net/netip"
	"time"

	"hipcloud/internal/cloud"
	"hipcloud/internal/hip"
	"hipcloud/internal/hipsim"
	"hipcloud/internal/identity"
	"hipcloud/internal/keymat"
	"hipcloud/internal/metrics"
	"hipcloud/internal/netsim"
	"hipcloud/internal/secio"
	"hipcloud/internal/simtcp"
	"hipcloud/internal/teredo"
	"hipcloud/internal/workload"
)

// ConnMode is one connectivity configuration on Figure 3's x-axis.
type ConnMode int

// The six modes of Figure 3.
const (
	ModeIPv4 ConnMode = iota
	ModeHITIPv4
	ModeLSIIPv4
	ModeTeredo
	ModeHITTeredo
	ModeLSITeredo
)

func (m ConnMode) String() string {
	switch m {
	case ModeIPv4:
		return "IPv4"
	case ModeHITIPv4:
		return "HIT(IPv4)"
	case ModeLSIIPv4:
		return "LSI(IPv4)"
	case ModeTeredo:
		return "Teredo"
	case ModeHITTeredo:
		return "HIT(Teredo)"
	case ModeLSITeredo:
		return "LSI(Teredo)"
	}
	return "mode(?)"
}

// Fig3Modes lists the modes in the paper's bar order.
var Fig3Modes = []ConnMode{ModeLSIIPv4, ModeTeredo, ModeIPv4, ModeHITIPv4, ModeHITTeredo, ModeLSITeredo}

// Fig3Point is one mode's iperf + RTT measurement.
type Fig3Point struct {
	Mode    ConnMode
	Mbps    float64
	MeanRTT time.Duration
	Pings   int
}

// Fig3Config parameterizes the reproduction.
type Fig3Config struct {
	Profile cloud.Profile
	// Bytes per iperf transfer (default 6 MiB).
	Bytes int
	// Pings per RTT series (paper: 20).
	Pings int
	Seed  int64
	// Suites overrides the HIP_CIPHER proposal list for the secured
	// modes. Nil keeps the 2012 transform set (the committed numbers);
	// keymat.PreferredAEAD re-measures the same figure on the modern
	// single-pass AEAD data plane (the EXPERIMENTS.md
	// "fig3 on modern primitives" table).
	Suites []keymat.Suite
}

func (c *Fig3Config) fill() {
	if c.Bytes <= 0 {
		c.Bytes = 6 << 20
	}
	if c.Pings <= 0 {
		c.Pings = 20
	}
	if c.Profile.Name == "" {
		c.Profile = cloud.EC2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// fig3World is two VMs in one zone plus an external Teredo server.
type fig3World struct {
	sim       *netsim.Sim
	vmA, vmB  *cloud.VM
	teredoSrv *teredo.Server
	caT, cbT  *teredo.Client
}

func buildFig3World(cfg Fig3Config, needTeredo bool) *fig3World {
	s := netsim.New(cfg.Seed)
	n := netsim.NewNetwork(s)
	cl := cloud.New(n, cfg.Profile)
	tenant := &cloud.Tenant{Name: "t", VLAN: 1}
	w := &fig3World{
		sim: s,
		vmA: cl.Zones[0].Launch("vmA", cfg.Profile.WebType, tenant),
		vmB: cl.Zones[0].Launch("vmB", cfg.Profile.WebType, tenant),
	}
	if needTeredo {
		// A nearby public Teredo server/relay: moderate extra latency and
		// a relay pipe no wider than a VM's, so triangular routing costs
		// both latency and throughput — the paper's worst-case bar.
		// Public Teredo relays were shared, slow infrastructure in 2012;
		// a sixth of the datacenter pipe reproduces the observed drop.
		srvNode := cl.AttachExternalLink("teredo-srv", 4, 4, 400*time.Microsecond, cfg.Profile.LinkBandwidth/6)
		w.teredoSrv = teredo.NewServer(srvNode)
		w.caT = teredo.NewClient(w.vmA.Node, w.teredoSrv.Addr())
		w.cbT = teredo.NewClient(w.vmB.Node, w.teredoSrv.Addr())
	}
	return w
}

// RunFig3Mode measures one connectivity mode.
func RunFig3Mode(cfg Fig3Config, mode ConnMode) (Fig3Point, error) {
	cfg.fill()
	pt := Fig3Point{Mode: mode}
	needTeredo := mode == ModeTeredo || mode == ModeHITTeredo || mode == ModeLSITeredo
	w := buildFig3World(cfg, needTeredo)
	s := w.sim

	// Qualification runs first for Teredo modes.
	qualify := func(p *netsim.Proc) error {
		if !needTeredo {
			return nil
		}
		if err := w.caT.Qualify(p, 10*time.Second); err != nil {
			return err
		}
		return w.cbT.Qualify(p, 10*time.Second)
	}

	var setupErr error
	var bulk *workload.BulkResult
	rtts := &metrics.Histogram{}

	s.Spawn("fig3", func(p *netsim.Proc) {
		if err := qualify(p); err != nil {
			setupErr = err
			return
		}
		var cliT, srvT *secio.Transport
		var target netip.Addr
		var ping func(p *netsim.Proc) (time.Duration, error)

		switch mode {
		case ModeIPv4:
			cliT = &secio.Transport{Kind: secio.Basic, Stack: simtcp.NewStack(w.vmA.Node, simtcp.NewPlainFabric(w.vmA.Node))}
			srvT = &secio.Transport{Kind: secio.Basic, Stack: simtcp.NewStack(w.vmB.Node, simtcp.NewPlainFabric(w.vmB.Node))}
			target = w.vmB.Addr()
			ping = func(p *netsim.Proc) (time.Duration, error) {
				return w.vmA.Node.Ping(p, w.vmB.Addr(), 64, 5*time.Second)
			}
		case ModeHITIPv4, ModeLSIIPv4:
			reg := hipsim.NewRegistry()
			fa := newHIPFabric(w.vmA.Node, reg, nil, cfg.Suites)
			fb := newHIPFabric(w.vmB.Node, reg, nil, cfg.Suites)
			cliT = &secio.Transport{Kind: secio.HIP, Stack: simtcp.NewStack(w.vmA.Node, fa)}
			srvT = &secio.Transport{Kind: secio.HIP, Stack: simtcp.NewStack(w.vmB.Node, fb)}
			target = fb.Host().HIT()
			if mode == ModeLSIIPv4 {
				target = reg.LSI(fb.Host().HIT())
			}
			tgt := target
			ping = func(p *netsim.Proc) (time.Duration, error) {
				return fa.Ping(p, tgt, 64, 5*time.Second)
			}
		case ModeTeredo:
			w.cbT.EchoService()
			cliT = &secio.Transport{Kind: secio.Basic, Stack: simtcp.NewStack(w.vmA.Node, teredo.NewFabric(w.caT))}
			srvT = &secio.Transport{Kind: secio.Basic, Stack: simtcp.NewStack(w.vmB.Node, teredo.NewFabric(w.cbT))}
			target = w.cbT.Addr()
			ping = func(p *netsim.Proc) (time.Duration, error) {
				return w.caT.Ping(p, w.cbT.Addr(), 64, 5*time.Second)
			}
		case ModeHITTeredo, ModeLSITeredo:
			reg := hipsim.NewRegistry()
			fa := newHIPFabric(w.vmA.Node, reg, w.caT, cfg.Suites)
			fb := newHIPFabric(w.vmB.Node, reg, w.cbT, cfg.Suites)
			cliT = &secio.Transport{Kind: secio.HIP, Stack: simtcp.NewStack(w.vmA.Node, fa)}
			srvT = &secio.Transport{Kind: secio.HIP, Stack: simtcp.NewStack(w.vmB.Node, fb)}
			target = fb.Host().HIT()
			if mode == ModeLSITeredo {
				target = reg.LSI(fb.Host().HIT())
			}
			tgt := target
			ping = func(p *netsim.Proc) (time.Duration, error) {
				return fa.Ping(p, tgt, 64, 5*time.Second)
			}
		}

		// RTT series first (quiet network), then the bulk transfer.
		for i := 0; i < cfg.Pings; i++ {
			if rtt, err := ping(p); err == nil {
				rtts.Add(rtt)
			}
			p.Sleep(50 * time.Millisecond)
		}
		b := &workload.Bulk{
			Client: cliT, Server: srvT,
			Target: target, Port: 5001, Total: cfg.Bytes,
		}
		bulk = b.Run(s)
	})

	s.Run(10 * time.Minute)
	s.Shutdown()
	if setupErr != nil {
		return pt, setupErr
	}
	if bulk == nil || bulk.Err != nil {
		err := fmt.Errorf("fig3 %v: bulk transfer failed", mode)
		if bulk != nil && bulk.Err != nil {
			err = fmt.Errorf("fig3 %v: %w", mode, bulk.Err)
		}
		return pt, err
	}
	pt.Mbps = bulk.Mbps()
	pt.MeanRTT = rtts.Mean()
	pt.Pings = rtts.Count()
	return pt, nil
}

// newHIPFabric builds a HIP host+fabric on node; ul selects the underlay
// (nil = direct IPv4).
func newHIPFabric(node *netsim.Node, reg *hipsim.Registry, ul hipsim.Underlay, suites []keymat.Suite) *hipsim.Fabric {
	id := identity.MustGenerateDeterministic(identity.AlgRSA, "fig3/"+node.Name())
	loc := node.Addr()
	if ul != nil {
		loc = ul.LocalAddr()
	}
	h, err := hip.NewHost(hip.Config{
		Identity: id, Locator: loc, Costs: cloud.HIPCosts(true), Suites: suites,
	})
	if err != nil {
		panic(err)
	}
	if ul == nil {
		return hipsim.New(node, h, reg)
	}
	return hipsim.NewWithUnderlay(node, h, reg, ul)
}

// RunFig3 regenerates Figure 3: iperf bandwidth and mean ICMP RTT for all
// six connectivity modes between two EC2 VMs.
func RunFig3(cfg Fig3Config) ([]Fig3Point, *metrics.Table, error) {
	cfg.fill()
	tbl := metrics.NewTable(
		"Figure 3 — iperf bandwidth and RTT between two VMs ("+cfg.Profile.Name+")",
		"mode", "iperf (Mbit/s)", "mean RTT", "pings")
	var out []Fig3Point
	for _, mode := range Fig3Modes {
		pt, err := RunFig3Mode(cfg, mode)
		if err != nil {
			return out, tbl, err
		}
		out = append(out, pt)
		tbl.Row(pt.Mode.String(), pt.Mbps, pt.MeanRTT, pt.Pings)
	}
	tbl.Caption = "paper: IPv4 fastest; HIT below it; LSI slower than HIT (translation); Teredo worst latency (relay)"
	return out, tbl, nil
}
