package experiments

import (
	"fmt"
	"time"

	"hipcloud/internal/cloud"
	"hipcloud/internal/hip"
	"hipcloud/internal/hipsim"
	"hipcloud/internal/identity"
	"hipcloud/internal/metrics"
	"hipcloud/internal/netsim"
	"hipcloud/internal/puzzle"
)

// BEXPoint measures base-exchange latency and CPU for one configuration.
type BEXPoint struct {
	Alg         identity.Algorithm
	PuzzleK     uint8
	WallLatency time.Duration // virtual time from Connect to ESTABLISHED
	InitCPU     time.Duration // initiator CPU consumed
	RespCPU     time.Duration // responder CPU consumed
}

// RunBEX measures base exchanges between two micro VMs with the given HI
// algorithm and puzzle difficulty, averaged over several seeds (puzzle
// solving has ~2^K mean but high variance). §IV-B processing-cost
// analysis; the ECDSA rows quantify the paper's "elliptic-curve
// cryptography can curb the processing costs" remark.
func RunBEX(alg identity.Algorithm, k uint8, seed int64) (BEXPoint, error) {
	const trials = 5
	var acc BEXPoint
	acc.Alg, acc.PuzzleK = alg, k
	for t := int64(0); t < trials; t++ {
		pt, err := runBEXOnce(alg, k, seed+t*7919)
		if err != nil {
			return acc, err
		}
		acc.WallLatency += pt.WallLatency
		acc.InitCPU += pt.InitCPU
		acc.RespCPU += pt.RespCPU
	}
	acc.WallLatency /= trials
	acc.InitCPU /= trials
	acc.RespCPU /= trials
	return acc, nil
}

func runBEXOnce(alg identity.Algorithm, k uint8, seed int64) (BEXPoint, error) {
	pt := BEXPoint{Alg: alg, PuzzleK: k}
	s := netsim.New(seed)
	n := netsim.NewNetwork(s)
	cl := cloud.New(n, cloud.EC2)
	a := cl.Zones[0].Launch("a", cloud.Micro, nil)
	b := cl.Zones[0].Launch("b", cloud.Micro, nil)
	reg := hipsim.NewRegistry()
	costs := cloud.HIPCosts(alg == identity.AlgRSA)
	diff := puzzle.Difficulty{BaseK: k, MaxK: k, LowWater: 1, HighWater: 2}
	mk := func(vm *cloud.VM) *hipsim.Fabric {
		id := identity.MustGenerateDeterministic(alg, fmt.Sprintf("bex/%d/%s", seed, vm.Node.Name()))
		h, err := hip.NewHost(hip.Config{Identity: id, Locator: vm.Addr(), Costs: costs, Puzzle: diff})
		if err != nil {
			panic(err)
		}
		return hipsim.New(vm.Node, h, reg)
	}
	fa, fb := mk(a), mk(b)
	var bexErr error
	var start, end netsim.VTime
	s.Spawn("bex", func(p *netsim.Proc) {
		start = p.Now()
		bexErr = fa.Establish(p, fb.Host().HIT())
		end = p.Now()
	})
	s.Run(time.Minute)
	pt.WallLatency = end - start
	pt.InitCPU = a.Node.CPU().BusyTime()
	pt.RespCPU = b.Node.CPU().BusyTime()
	s.Shutdown()
	return pt, bexErr
}

// RunBEXTable sweeps HI algorithms and puzzle difficulties.
func RunBEXTable(seed int64) ([]BEXPoint, *metrics.Table, error) {
	tbl := metrics.NewTable(
		"§IV-B — base exchange cost on micro instances",
		"HI alg", "puzzle K", "BEX latency", "initiator CPU", "responder CPU")
	var out []BEXPoint
	for _, alg := range []identity.Algorithm{identity.AlgRSA, identity.AlgECDSA} {
		for _, k := range []uint8{1, 8, 12, 16} {
			pt, err := RunBEX(alg, k, seed)
			if err != nil {
				return out, tbl, fmt.Errorf("bex %v k=%d: %w", alg, k, err)
			}
			out = append(out, pt)
			tbl.Row(pt.Alg.String(), int(pt.PuzzleK), pt.WallLatency, pt.InitCPU, pt.RespCPU)
		}
	}
	tbl.Caption = "control plane pays asymmetric crypto once per association; puzzle difficulty shifts work onto the initiator (DoS defense)"
	return out, tbl, nil
}

// PuzzlePoint measures solver effort at one difficulty.
type PuzzlePoint struct {
	K            uint8
	MeanAttempts float64
	SolveCPU     time.Duration // modeled initiator cost at that difficulty
}

// RunPuzzleSweep quantifies the DoS-protection knob: mean solver attempts
// (≈2^K) and the virtual CPU they cost an initiator.
func RunPuzzleSweep(ks []uint8, trials int, seed int64) ([]PuzzlePoint, *metrics.Table) {
	if len(ks) == 0 {
		ks = []uint8{0, 4, 8, 12, 16, 20}
	}
	if trials <= 0 {
		trials = 16
	}
	hitI := identity.MustGenerateDeterministic(identity.AlgECDSA, "puzzle-sweep/i").HIT()
	hitR := identity.MustGenerateDeterministic(identity.AlgECDSA, "puzzle-sweep/r").HIT()
	costs := cloud.HIPCosts(false)
	tbl := metrics.NewTable("Puzzle difficulty sweep (DoS defense)", "K", "mean attempts", "initiator CPU")
	var out []PuzzlePoint
	for _, k := range ks {
		var total uint64
		for t := 0; t < trials; t++ {
			_, attempts, err := puzzle.Solve(uint64(seed)+uint64(t)*7919, k, hitI, hitR, uint64(t)*104729)
			if err != nil {
				continue
			}
			total += attempts
		}
		mean := float64(total) / float64(trials)
		pt := PuzzlePoint{
			K:            k,
			MeanAttempts: mean,
			SolveCPU:     time.Duration(mean * float64(costs.HashOp)),
		}
		out = append(out, pt)
		tbl.Row(int(k), pt.MeanAttempts, pt.SolveCPU)
	}
	return out, tbl
}
