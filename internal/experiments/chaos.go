package experiments

import (
	"bufio"
	"fmt"
	"time"

	"hipcloud/internal/cloud"
	"hipcloud/internal/faults"
	"hipcloud/internal/metrics"
	"hipcloud/internal/microhttp"
	"hipcloud/internal/netsim"
	"hipcloud/internal/rubis"
	"hipcloud/internal/secio"
)

// ChaosConfig parameterizes the chaos experiment.
type ChaosConfig struct {
	Profile cloud.Profile
	// Duration is the virtual length of each scenario run; the fault
	// schedule scales with it. Default 45s.
	Duration time.Duration
	Clients  int // concurrent closed-loop clients (default 6)
	// Timeout aborts a client request (jmeter response timeout); default
	// Duration/10, so the schedule still works for short smoke runs.
	Timeout time.Duration
	Seed    int64
}

func (c *ChaosConfig) fill() {
	if c.Duration <= 0 {
		c.Duration = 45 * time.Second
	}
	if c.Clients <= 0 {
		c.Clients = 6
	}
	if c.Timeout <= 0 {
		c.Timeout = c.Duration / 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Profile.Name == "" {
		c.Profile = cloud.EC2
	}
}

// ChaosResult is one scenario's measurements under the fault schedule.
type ChaosResult struct {
	Kind      secio.Kind
	Completed int
	Failed    int
	// WorstOutage is the longest gap between successive successful
	// responses across all clients — how long the service was dark.
	WorstOutage time.Duration
	// WebRecovery is the time from web1's crash until it served its first
	// request from its new zone (0 = it never recovered in this run).
	WebRecovery time.Duration
	FaultLog    []faults.Record
}

// LossPct is the fraction of issued requests that failed, in percent.
func (r ChaosResult) LossPct() float64 {
	total := r.Completed + r.Failed
	if total == 0 {
		return 0
	}
	return float64(r.Failed) * 100 / float64(total)
}

// runChaosScenario drives the Figure 1 testbed through a deterministic
// fault schedule (all offsets are fractions of cfg.Duration, written D):
//
//	0.15D  LB uplink flaps down for 0.04D — every scenario goes dark.
//	0.30D  LB uplink impaired for 0.07D: loss, bit corruption,
//	       duplication, reordering.
//	0.50D  web1 crashes and its access link is severed for good.
//	0.55D  web1 restarts in zone b with a new address (the migration
//	       machinery); under HIP the fabric announces the new locator
//	       with UPDATE, so the LB's pooled associations rehome and
//	       retransmits drain into the new zone. Basic and SSL backends
//	       are IP-bound: the LB keeps dialing the dead address and web1
//	       is lost for the rest of the run.
//	0.70D  the DB's CPU stalls for 0.05D (noisy-neighbour burst).
func runChaosScenario(cfg ChaosConfig, kind secio.Kind) ChaosResult {
	d := Deploy(DeployConfig{
		Profile: cfg.Profile,
		Kind:    kind,
		NumWeb:  3,
		DBCache: false,
		UseRSA:  true,
		Seed:    cfg.Seed,
		WithLB:  true,
		Zones:   2,
	})
	D := cfg.Duration
	inj := faults.New(d.Sim)
	uplink := d.Cloud.Net.LinkBetween(d.LBNode, d.Cloud.Zones[0].Router)
	inj.FlapLink(uplink, "lb-uplink", D*15/100, D*4/100)
	inj.ImpairLink(uplink, "lb-uplink", D*30/100, D*7/100, faults.Impairment{
		DropProb:     0.05,
		CorruptProb:  0.02,
		DupProb:      0.02,
		ReorderProb:  0.05,
		ReorderDelay: 2 * time.Millisecond,
	})
	web1 := d.WebVMs[0]
	oldAccess := web1.AccessLink()
	crashAt := D * 50 / 100
	restartAt := D * 55 / 100
	inj.At(crashAt, "crash web1", web1.Crash)
	// The old attachment dies with the host: flap it down permanently so
	// the pre-migration address really is unreachable.
	inj.FlapLink(oldAccess, "web1-old-access", crashAt, 0)
	inj.At(restartAt, "restart web1 in zone b", func() {
		newAddr := web1.RestartIn(d.Cloud.Zones[1])
		if fab := d.WebFabs[0]; fab != nil {
			fab.MoveTo(newAddr)
		}
	})
	inj.StallCPU(d.DBVM.Node, D*70/100, D*5/100)

	res := ChaosResult{Kind: kind}
	mix := rubis.NewMix(cfg.Seed+7, d.DB.NumItems(), d.DB.NumUsers())
	addr, port := d.FrontAddr()
	var lastOK time.Duration
	for i := 0; i < cfg.Clients; i++ {
		d.Sim.Spawn("chaos-client", func(p *netsim.Proc) {
			var conn secio.Conn
			var br *bufio.Reader
			defer func() {
				if conn != nil {
					conn.Close()
				}
			}()
			for p.Now() < D {
				if conn == nil {
					c, err := d.ClientT.Dial(p, addr, port)
					if err != nil {
						res.Failed++
						p.Sleep(D / 200)
						continue
					}
					conn = c
					br = bufio.NewReader(c)
				}
				req := &microhttp.Request{Method: "GET", Path: mix.Next(), Headers: map[string]string{"Host": "rubis"}}
				resp, err := chaosRoundTrip(p, conn, br, req, cfg.Timeout)
				if err != nil || resp.Status != 200 {
					res.Failed++
					conn.Close()
					conn = nil
					continue
				}
				res.Completed++
				now := p.Now()
				if gap := now - lastOK; gap > res.WorstOutage {
					res.WorstOutage = gap
				}
				lastOK = now
			}
		})
	}
	// Recovery monitor: web1 has recovered once it serves a request from
	// its new home.
	web1B := d.LB.Backends[0]
	d.Sim.Spawn("chaos-monitor", func(p *netsim.Proc) {
		p.Sleep(restartAt)
		base := web1B.Served
		for p.Now() < D {
			if web1B.Served > base {
				res.WebRecovery = p.Now() - crashAt
				return
			}
			p.Sleep(D / 500)
		}
	})
	d.Sim.Run(D + D/10)
	d.Sim.Shutdown()
	res.FaultLog = inj.Log()
	return res
}

// chaosRoundTrip performs one HTTP exchange, aborting the connection
// after timeout (the simulated streams have no read deadlines; Abort is
// what unblocks a reader stalled on a crashed backend).
func chaosRoundTrip(p *netsim.Proc, conn secio.Conn, br *bufio.Reader, req *microhttp.Request, timeout time.Duration) (*microhttp.Response, error) {
	done, fired := false, false
	p.Sim().After(timeout, func() {
		if !done {
			fired = true
			conn.Abort()
		}
	})
	resp, err := microhttp.RoundTrip(conn, br, req)
	done = true
	if fired && err == nil {
		return nil, microhttp.ErrMalformed
	}
	return resp, err
}

// RunChaos runs the fault schedule against the basic, HIP and SSL
// scenarios and tabulates request loss and recovery — the paper's
// resilience argument (HIP associations survive locator changes via
// UPDATE; IP-bound transports do not) as a measurable table.
func RunChaos(cfg ChaosConfig) ([]ChaosResult, *metrics.Table) {
	cfg.fill()
	var out []ChaosResult
	tbl := metrics.NewTable(
		fmt.Sprintf("Chaos — RUBiS under a fault schedule (%s, %v)", cfg.Profile.Name, cfg.Duration),
		"scenario", "ok", "failed", "loss%", "worst-outage", "web1-recovery")
	for _, kind := range []secio.Kind{secio.Basic, secio.HIP, secio.SSL} {
		r := runChaosScenario(cfg, kind)
		out = append(out, r)
		rec := "never"
		if r.WebRecovery > 0 {
			rec = fmt.Sprintf("%.1fms", float64(r.WebRecovery)/1e6)
		}
		tbl.Row(kind.String(), r.Completed, r.Failed, r.LossPct(), r.WorstOutage, rec)
	}
	tbl.Caption = "schedule: uplink flap + corruption window, web1 crash → restart in zone b (locator change), DB CPU stall;\n" +
		"HIP rehomes the LB's associations with UPDATE, basic/SSL lose the migrated backend for good"
	return out, tbl
}
