package experiments

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"hipcloud/internal/cloud"
	"hipcloud/internal/faults"
	"hipcloud/internal/hip"
	"hipcloud/internal/hipdns"
	"hipcloud/internal/hipsim"
	"hipcloud/internal/identity"
	"hipcloud/internal/metrics"
	"hipcloud/internal/netsim"
	"hipcloud/internal/puzzle"
	"hipcloud/internal/rvs"
	"hipcloud/internal/secio"
	"hipcloud/internal/simtcp"
)

// stormEchoPort is where basic/SSL echo servers listen (HIP clients probe
// in-tunnel via the fabric's native echo instead).
const stormEchoPort uint16 = 7

// StormConfig parameterizes the control-plane overload experiment.
type StormConfig struct {
	Profile cloud.Profile
	// Duration is the virtual length of each scenario run; the fault and
	// evacuation schedule scales with it. Default 60s.
	Duration time.Duration
	// Servers is the number of echo-service VMs, all packed onto ONE
	// physical host in zone a so a single host failure evacuates every one
	// of them at once. Default 8.
	Servers int
	// Clients is the herd size: each client holds one association (HIP) or
	// connection (basic/SSL) and re-contacts after the evacuation. Default
	// 500, the scale the admission/backoff machinery must survive.
	Clients int
	Seed    int64
}

func (c *StormConfig) fill() {
	if c.Duration <= 0 {
		c.Duration = 60 * time.Second
	}
	if c.Servers <= 0 {
		c.Servers = 8
	}
	if c.Clients <= 0 {
		c.Clients = 500
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Profile.Name == "" {
		c.Profile = cloud.EC2
	}
}

// StormResult is one scenario's measurements.
type StormResult struct {
	Kind    secio.Kind
	Clients int
	// ContactsOK counts successful establishments (initial + re-contact);
	// Redials counts failed resolve/establish attempts.
	ContactsOK, Redials int
	// EchoOK/EchoFail count the per-client liveness probes.
	EchoOK, EchoFail int
	// Recontacts is how many outage->reconnect cycles completed;
	// RecontactP50/P99 summarize time from detecting the dead peer to
	// restored service.
	Recontacts                 int
	RecontactP50, RecontactP99 time.Duration
	// Dipped reports whether connectivity fell below the recovery
	// threshold after the evacuation; Recovery is the time from the
	// evacuation until >=95% of clients were connected again (0 with
	// Dipped=true means the herd never recovered inside the run).
	Dipped   bool
	Recovery time.Duration
	// Shed counters: HIP responder admission queues, rendezvous relay
	// rate limiter, DNS server pending-queue backpressure.
	CtlShed, RVSShed, DNSShed uint64
	// Retransmits sums HIP control-plane retransmissions across all hosts
	// (the amplification the jittered capped backoff must bound).
	Retransmits uint64
	FaultLog    []faults.Record
}

// stormServer is one evacuated service VM and its per-kind plumbing.
type stormServer struct {
	vm    *cloud.VM
	name  string
	id    *identity.HostIdentity
	fab   *hipsim.Fabric      // HIP only
	plain *simtcp.PlainFabric // basic/SSL only
}

// runStormScenario drives one transport kind through the storm schedule
// (offsets are fractions of cfg.Duration, written D):
//
//	0.30D  both inter-zone links impaired (8% loss) for 0.25D — the
//	       re-contact herd crosses a lossy path, so retransmit backoff
//	       and jitter actually matter.
//	0.35D  physical host 0 of zone a fails: every service VM evacuates
//	       at once (cloud.Evacuate) into zones b/c. HIP servers announce
//	       the new locator (UPDATE storm) and re-register with the
//	       rendezvous server; basic/SSL rely on the short-TTL DNS A
//	       record the controller rewrites.
//	0.36D  the DNS server's CPU stalls for 0.06D, right as the herd
//	       re-resolves: its bounded pending queue sheds with retry-after
//	       and resolvers fall back to (now stale) cached answers.
func runStormScenario(cfg StormConfig, kind secio.Kind) StormResult {
	D := cfg.Duration
	res := StormResult{Kind: kind, Clients: cfg.Clients}

	s := netsim.New(cfg.Seed)
	n := netsim.NewNetwork(s)
	cl := cloud.New(n, cfg.Profile)
	cl.AddZone("b")
	cl.AddZone("c")
	// Pack every service VM onto physical host 0 so one host failure is a
	// full-fleet evacuation.
	cl.Zones[0].HostCapacity = cfg.Servers
	tenant := &cloud.Tenant{Name: "svc", VLAN: 1}
	costs := cloud.HIPCosts(false) // ECDSA identities keep setup fast

	dnsNode := cl.AttachExternal("dns", 2, 4)
	dnsSrv := hipdns.NewServer(dnsNode)
	dnsSrv.PerQueryCost = 200 * time.Microsecond
	rvNode := cl.AttachExternal("rvs", 4, 4)
	rvsSrv := rvs.New(rvNode)
	rvsSrv.TTL = 10 * time.Second
	// Modestly provisioned relay: the loss-window churn plus the
	// evacuation herd exceed this, so the rate limiter sheds and the
	// initiators' jittered backoff paces the retries — degrade, don't
	// collapse.
	rvsSrv.MaxRelayRate = 128

	// Service tier: adaptive puzzles so the responders harden as their
	// admission queues deepen (hipsim feeds queue depth to the host).
	diff := puzzle.Difficulty{BaseK: 1, MaxK: 10, LowWater: 8, HighWater: 64}
	serverReg := hipsim.NewRegistry()
	servers := make([]*stormServer, cfg.Servers)
	byVM := make(map[*cloud.VM]*stormServer)
	for i := range servers {
		vm := cl.Zones[0].Launch("svc"+itoa(i), cfg.Profile.WebType, tenant)
		sv := &stormServer{vm: vm, name: fmt.Sprintf("svc%d.cloud", i)}
		servers[i] = sv
		byVM[vm] = sv
		switch kind {
		case secio.HIP:
			sv.id = identity.MustGenerateDeterministic(identity.AlgECDSA,
				fmt.Sprintf("storm/%d/svc%d", cfg.Seed, i))
			host, err := hip.NewHost(hip.Config{
				Identity: sv.id, Locator: vm.Addr(), Costs: costs, Puzzle: diff,
			})
			if err != nil {
				panic(err)
			}
			sv.fab = hipsim.New(vm.Node, host, serverReg)
			rvsSrv.Register(sv.id.HIT(), vm.Addr())
			// The HIP RR is stable across migrations: clients learn the HIT
			// and the rendezvous address, never a locator that can go stale.
			dnsSrv.Set(sv.name, hipdns.Record{
				Type: hipdns.TypeHIP, TTL: 30 * time.Second,
				HIP: &hipdns.HIPRecord{
					HIT: sv.id.HIT(), Algorithm: 7,
					RendezvousServers: []netip.Addr{rvsSrv.Addr()},
				},
			})
			// Registration refresh: re-register every TTL/2 with the
			// current locator, so a binding only goes stale if the host
			// actually stops (rvs satellite: TTL + refresh).
			fab := sv.fab
			hit := sv.id.HIT()
			s.Spawn(sv.name+"/rvs-refresh", func(p *netsim.Proc) {
				for p.Now() < D {
					p.Sleep(rvsSrv.TTL / 2)
					rvsSrv.Register(hit, fab.Host().Locator())
				}
			})
		case secio.SSL:
			sv.id = identity.MustGenerateDeterministic(identity.AlgECDSA,
				fmt.Sprintf("storm/%d/svc%d", cfg.Seed, i))
			sv.plain = plainFabric(vm.Node)
			tr := &secio.Transport{
				Kind: secio.SSL, Identity: sv.id, Costs: cloud.TLSCosts(false),
				Stack: simtcp.NewStack(vm.Node, sv.plain),
				Rand:  s.Rand(),
			}
			stormEchoServer(s, sv.name, tr)
			dnsSrv.Set(sv.name, hipdns.Record{Type: hipdns.TypeA, TTL: 2 * time.Second, Addr: vm.Addr()})
		default:
			sv.plain = plainFabric(vm.Node)
			tr := &secio.Transport{
				Kind: secio.Basic, Stack: simtcp.NewStack(vm.Node, sv.plain),
			}
			stormEchoServer(s, sv.name, tr)
			dnsSrv.Set(sv.name, hipdns.Record{Type: hipdns.TypeA, TTL: 2 * time.Second, Addr: vm.Addr()})
		}
	}

	// Fault schedule.
	inj := faults.New(s)
	imp := faults.Impairment{DropProb: 0.08}
	inj.ImpairLink(cl.InterZoneLink(cl.Zones[0], cl.Zones[1]), "a-b", D*30/100, D*25/100, imp)
	inj.ImpairLink(cl.InterZoneLink(cl.Zones[0], cl.Zones[2]), "a-c", D*30/100, D*25/100, imp)
	evacAt := D * 35 / 100
	inj.At(evacAt, "evacuate zone-a host 0", func() {
		for _, vm := range cl.Evacuate(cl.Zones[0], 0) {
			sv := byVM[vm]
			if sv.fab != nil {
				// The HIP host knows its locator changed: UPDATE storm to
				// every peer, immediate rendezvous re-registration.
				sv.fab.MoveTo(vm.Addr())
				rvsSrv.Register(sv.id.HIT(), vm.Addr())
			} else {
				// IP-bound tiers depend on the controller rewriting the
				// short-TTL A record; clients converge as caches lapse. The
				// fabric rehomes so fresh connections source from the live
				// locator.
				sv.plain.Rehome()
				dnsSrv.Set(sv.name, hipdns.Record{Type: hipdns.TypeA, TTL: 2 * time.Second, Addr: vm.Addr()})
			}
		}
	})
	inj.StallCPU(dnsNode, D*36/100, D*6/100)

	// Client herd.
	rng := s.Rand()
	connected := 0
	var recon metrics.Histogram
	var clientFabs []*hipsim.Fabric
	for i := 0; i < cfg.Clients; i++ {
		target := servers[i%cfg.Servers]
		node := cl.AttachExternal("cli"+itoa(i), 1, 1)
		resv := hipdns.NewResolver(node, dnsSrv.Addr())
		resv.RetryBudget = 4
		resv.RetryPerSec = 1
		startAt := time.Duration(i) * (D / 10) / time.Duration(cfg.Clients)
		if kind == secio.HIP {
			id := identity.MustGenerateDeterministic(identity.AlgECDSA,
				fmt.Sprintf("storm/%d/cli%d", cfg.Seed, i))
			host, err := hip.NewHost(hip.Config{Identity: id, Locator: node.Addr(), Costs: costs})
			if err != nil {
				panic(err)
			}
			reg := hipsim.NewRegistry()
			fab := hipsim.New(node, host, reg)
			clientFabs = append(clientFabs, fab)
			s.Spawn("cli", func(p *netsim.Proc) {
				p.Sleep(startAt)
				stormHIPClient(p, &res, rng, fab, reg, resv, target.name, D, &connected, &recon)
			})
		} else {
			tr := &secio.Transport{
				Kind: kind, Stack: simtcp.NewStack(node, plainFabric(node)),
				DialTimeout: time.Second,
			}
			if kind == secio.SSL {
				tr.Costs = cloud.TLSCosts(false)
				tr.Rand = s.Rand()
			}
			s.Spawn("cli", func(p *netsim.Proc) {
				p.Sleep(startAt)
				stormTCPClient(p, &res, rng, tr, resv, target.name, D, &connected, &recon)
			})
		}
	}

	// Recovery monitor: after the evacuation, wait for connectivity to dip
	// below the threshold and record when it climbs back over it.
	need := cfg.Clients * 95 / 100
	s.Spawn("storm-monitor", func(p *netsim.Proc) {
		p.Sleep(evacAt)
		for p.Now() < D {
			if connected < need {
				res.Dipped = true
			} else if res.Dipped {
				res.Recovery = p.Now() - evacAt
				return
			}
			p.Sleep(D / 500)
		}
	})

	s.Run(D + D/4)
	s.Shutdown()

	if recon.Count() > 0 {
		res.RecontactP50 = recon.Percentile(50)
		res.RecontactP99 = recon.Percentile(99)
	}
	for _, sv := range servers {
		if sv.fab != nil {
			res.CtlShed += sv.fab.CtlShed()
			res.Retransmits += sv.fab.Host().Retransmits
		}
	}
	for _, f := range clientFabs {
		res.CtlShed += f.CtlShed()
		res.Retransmits += f.Host().Retransmits
	}
	res.RVSShed = rvsSrv.Shed
	res.DNSShed = dnsSrv.Shed
	res.FaultLog = inj.Log()
	return res
}

// stormEchoServer serves fixed-size echoes over the transport: accept
// loop plus one handler process per connection (handshakes off the loop).
func stormEchoServer(s *netsim.Sim, label string, tr *secio.Transport) {
	s.Spawn(label, func(p *netsim.Proc) {
		l := tr.MustListen(stormEchoPort)
		for {
			raw, err := l.AcceptRaw(p, 0)
			if err != nil {
				return
			}
			conn := raw
			p.Spawn(label+"/c", func(hp *netsim.Proc) {
				c, err := tr.ServerConn(hp, conn)
				if err != nil {
					return
				}
				defer c.Close()
				buf := make([]byte, 128)
				for {
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					if _, err := c.Write(buf[:n]); err != nil {
						return
					}
				}
			})
		}
	})
}

// stormBackoff sleeps a capped exponential backoff with +-50% jitter from
// the shared simulation RNG — the initiator-side pacing that keeps a
// synchronized herd from re-contacting in lockstep.
func stormBackoff(p *netsim.Proc, rng *rand.Rand, attempt int) {
	shift := attempt
	if shift > 4 {
		shift = 4
	}
	base := 200 * time.Millisecond << uint(shift)
	p.Sleep(base/2 + time.Duration(float64(base)*rng.Float64()))
}

// stormHIPClient keeps one HIP association alive: resolve the HIP RR,
// establish via the rendezvous server, probe in-tunnel; on a dead peer,
// tear down and re-contact through the same DNS->RVS path.
func stormHIPClient(p *netsim.Proc, res *StormResult, rng *rand.Rand,
	fab *hipsim.Fabric, reg *hipsim.Registry, resv *hipdns.Resolver,
	name string, D time.Duration, connected *int, recon *metrics.Histogram) {
	var peerHIT netip.Addr
	var downAt time.Duration
	attempt, isConn := 0, false
	for p.Now() < D {
		if !isConn {
			hr, err := resv.LookupHIP(p, name)
			if err != nil || len(hr.RendezvousServers) == 0 {
				res.Redials++
				stormBackoff(p, rng, attempt)
				attempt++
				continue
			}
			if err := fab.EstablishAt(p, hr.HIT, hr.RendezvousServers[0]); err != nil {
				res.Redials++
				stormBackoff(p, rng, attempt)
				attempt++
				continue
			}
			peerHIT = hr.HIT
			// The BEX learned the peer's true locator; mirror it into the
			// client's local registry so data-plane sends resolve.
			if a, ok := fab.Host().Association(peerHIT); ok {
				reg.Update(peerHIT, a.PeerLocator)
			}
			attempt = 0
			isConn = true
			*connected++
			res.ContactsOK++
			if downAt > 0 {
				res.Recontacts++
				recon.Add(p.Now() - downAt)
				downAt = 0
			}
		}
		if _, err := fab.Ping(p, peerHIT, 64, time.Second); err != nil {
			res.EchoFail++
			fab.Host().Close(peerHIT, p.Now())
			isConn = false
			*connected--
			if downAt == 0 {
				downAt = p.Now()
			}
			continue
		}
		res.EchoOK++
		p.Sleep(500 * time.Millisecond)
	}
}

// stormTCPClient keeps one basic/SSL echo connection alive, re-resolving
// the short-TTL A record and redialing whenever the peer goes dark.
func stormTCPClient(p *netsim.Proc, res *StormResult, rng *rand.Rand,
	tr *secio.Transport, resv *hipdns.Resolver,
	name string, D time.Duration, connected *int, recon *metrics.Histogram) {
	var conn secio.Conn
	var downAt time.Duration
	attempt := 0
	buf := make([]byte, 64)
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for p.Now() < D {
		if conn == nil {
			addr, err := resv.LookupAddr(p, name)
			if err != nil {
				res.Redials++
				stormBackoff(p, rng, attempt)
				attempt++
				continue
			}
			c, err := tr.Dial(p, addr, stormEchoPort)
			if err != nil {
				res.Redials++
				stormBackoff(p, rng, attempt)
				attempt++
				continue
			}
			conn = c
			attempt = 0
			*connected++
			res.ContactsOK++
			if downAt > 0 {
				res.Recontacts++
				recon.Add(p.Now() - downAt)
				downAt = 0
			}
		}
		if err := stormEcho(p, conn, buf, time.Second); err != nil {
			res.EchoFail++
			conn.Close()
			conn = nil
			*connected--
			if downAt == 0 {
				downAt = p.Now()
			}
			continue
		}
		res.EchoOK++
		p.Sleep(500 * time.Millisecond)
	}
}

// stormEcho writes a 32-byte probe and reads it back, aborting the
// connection after timeout (streams have no read deadlines; Abort is what
// unblocks a reader stalled on a dead peer).
func stormEcho(p *netsim.Proc, conn secio.Conn, buf []byte, timeout time.Duration) error {
	done, fired := false, false
	p.Sim().After(timeout, func() {
		if !done {
			fired = true
			conn.Abort()
		}
	})
	err := func() error {
		if _, err := conn.Write(buf[:32]); err != nil {
			return err
		}
		for got := 0; got < 32; {
			n, err := conn.Read(buf[32:])
			if err != nil {
				return err
			}
			got += n
		}
		return nil
	}()
	done = true
	if fired && err == nil {
		return netsim.ErrTimeout
	}
	return err
}

// RunStorm runs the evacuation storm for the basic, HIP and SSL scenarios
// and tabulates re-contact latency, recovery time and where load was shed
// — the control-plane overload companion to the chaos experiment: not
// "does one VM recover" but "does the herd's re-contact stampede stay
// bounded".
func RunStorm(cfg StormConfig) ([]StormResult, *metrics.Table) {
	cfg.fill()
	var out []StormResult
	tbl := metrics.NewTable(
		fmt.Sprintf("Storm — host evacuation re-contact herd (%s, %v, %d clients / %d servers)",
			cfg.Profile.Name, cfg.Duration, cfg.Clients, cfg.Servers),
		"scenario", "contacts", "redials", "recontacts", "p50", "p99", "recovery", "shed ctl/rvs/dns", "retrans")
	for _, kind := range []secio.Kind{secio.Basic, secio.HIP, secio.SSL} {
		r := runStormScenario(cfg, kind)
		out = append(out, r)
		rec := "no-dip"
		if r.Dipped {
			rec = "never"
			if r.Recovery > 0 {
				rec = fmt.Sprintf("%.1fms", float64(r.Recovery)/1e6)
			}
		}
		tbl.Row(kind.String(), r.ContactsOK, r.Redials, r.Recontacts,
			r.RecontactP50, r.RecontactP99, rec,
			fmt.Sprintf("%d/%d/%d", r.CtlShed, r.RVSShed, r.DNSShed), int(r.Retransmits))
	}
	tbl.Caption = "schedule: inter-zone loss window, full-host evacuation (synchronized locator change), DNS CPU stall;\n" +
		"HIP re-contacts via rendezvous + UPDATE while basic/SSL wait out DNS TTLs; shed = admission/relay/DNS backpressure"
	return out, tbl
}
