package experiments

import (
	"fmt"
	"time"

	"hipcloud/internal/cloud"
	"hipcloud/internal/hip"
	"hipcloud/internal/hipsim"
	"hipcloud/internal/identity"
	"hipcloud/internal/metrics"
	"hipcloud/internal/netsim"
	"hipcloud/internal/puzzle"
)

// DoSResult measures a base-exchange flood against a responder.
type DoSResult struct {
	Adaptive bool
	Bots     int
	// AttackerBEX counts completed hostile base exchanges.
	AttackerBEX uint64
	// LegitLatency is the mean BEX latency of the well-behaved client
	// during the attack.
	LegitLatency time.Duration
	// LegitOK/LegitTried count the legitimate client's attempts.
	LegitOK, LegitTried int
	// ResponderBusy is responder CPU consumed during the run.
	ResponderBusy time.Duration
	// FinalK is the puzzle difficulty the responder ended at.
	FinalK uint8
}

// DoSConfig parameterizes the attack experiment.
type DoSConfig struct {
	Bots     int
	Adaptive bool // load-adaptive puzzle difficulty vs fixed trivial puzzles
	Duration time.Duration
	Seed     int64
}

// RunDoS quantifies the paper's §IV-B DoS argument: hostile bots hammer a
// responder with full base exchanges while one honest client keeps
// re-associating. With adaptive puzzle difficulty the responder pushes
// ~2^K hash work onto each hostile attempt, throttling the attack; with
// trivial puzzles the bots monopolize the responder's CPU.
func RunDoS(cfg DoSConfig) (DoSResult, error) {
	if cfg.Bots <= 0 {
		cfg.Bots = 12
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 20 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	res := DoSResult{Adaptive: cfg.Adaptive, Bots: cfg.Bots}

	s := netsim.New(cfg.Seed)
	n := netsim.NewNetwork(s)
	cl := cloud.New(n, cloud.EC2)
	tenant := &cloud.Tenant{Name: "victim", VLAN: 1}
	victim := cl.Zones[0].Launch("victim", cloud.Micro, tenant)
	legit := cl.Zones[0].Launch("legit", cloud.Micro, tenant)
	costs := cloud.HIPCosts(false) // ECDSA keeps identity generation fast

	diff := puzzle.Difficulty{BaseK: 1, MaxK: 1, LowWater: 1, HighWater: 2}
	if cfg.Adaptive {
		diff = puzzle.Difficulty{BaseK: 1, MaxK: 20, LowWater: 4, HighWater: 60}
	}
	reg := hipsim.NewRegistry()
	victimID := identity.MustGenerateDeterministic(identity.AlgECDSA, fmt.Sprintf("dos/%d/victim", cfg.Seed))
	victimHost, err := hip.NewHost(hip.Config{
		Identity: victimID, Locator: victim.Addr(), Costs: costs, Puzzle: diff,
	})
	if err != nil {
		return res, err
	}
	_ = hipsim.New(victim.Node, victimHost, reg) // responder fabric (kernel proc serves BEXes)

	// Hostile bots: each completes base exchanges in a loop, tearing the
	// association down and re-associating (worst case for the responder:
	// full asymmetric work every time). Their own CPUs pay for puzzles.
	for i := 0; i < cfg.Bots; i++ {
		bot := cl.Zones[0].Launch("bot"+itoa(i), cloud.Micro, tenant)
		botID := identity.MustGenerateDeterministic(identity.AlgECDSA, fmt.Sprintf("dos/%d/bot%d", cfg.Seed, i))
		botHost, err := hip.NewHost(hip.Config{Identity: botID, Locator: bot.Addr(), Costs: costs})
		if err != nil {
			return res, err
		}
		botF := hipsim.New(bot.Node, botHost, reg)
		s.Spawn("bot", func(p *netsim.Proc) {
			end := p.Now() + cfg.Duration
			for p.Now() < end {
				if err := botF.Establish(p, victimID.HIT()); err == nil {
					res.AttackerBEX++
					botHost.Close(victimID.HIT(), p.Now())
					p.Sleep(10 * time.Millisecond)
				} else {
					p.Sleep(100 * time.Millisecond)
				}
			}
		})
	}

	// The honest client re-associates periodically and measures latency.
	legitID := identity.MustGenerateDeterministic(identity.AlgECDSA, fmt.Sprintf("dos/%d/legit", cfg.Seed))
	legitHost, err := hip.NewHost(hip.Config{Identity: legitID, Locator: legit.Addr(), Costs: costs})
	if err != nil {
		return res, err
	}
	legitF := hipsim.New(legit.Node, legitHost, reg)
	var lat metrics.Histogram
	s.Spawn("legit", func(p *netsim.Proc) {
		p.Sleep(2 * time.Second) // let the attack ramp
		end := p.Now() + cfg.Duration - 4*time.Second
		for p.Now() < end {
			start := p.Now()
			res.LegitTried++
			if err := legitF.Establish(p, victimID.HIT()); err == nil {
				res.LegitOK++
				lat.Add(p.Now() - start)
				legitHost.Close(victimID.HIT(), p.Now())
			}
			p.Sleep(500 * time.Millisecond)
		}
	})

	s.Run(cfg.Duration + 20*time.Second)
	res.LegitLatency = lat.Mean()
	res.ResponderBusy = victim.Node.CPU().BusyTime()
	res.FinalK = diff.K(int(victimHost.I1Load()))
	s.Shutdown()
	return res, nil
}

// RunDoSTable compares fixed vs adaptive puzzles under the same attack.
func RunDoSTable(seed int64) ([]DoSResult, *metrics.Table, error) {
	tbl := metrics.NewTable(
		"§IV-B — I1/BEX flood: fixed vs load-adaptive puzzle difficulty",
		"puzzles", "hostile BEX", "legit BEX ok", "legit mean latency", "responder CPU", "final K")
	var out []DoSResult
	for _, adaptive := range []bool{false, true} {
		r, err := RunDoS(DoSConfig{Adaptive: adaptive, Seed: seed})
		if err != nil {
			return out, tbl, err
		}
		out = append(out, r)
		name := "fixed (K=1)"
		if adaptive {
			name = "adaptive (K→20)"
		}
		tbl.Row(name, int(r.AttackerBEX), r.LegitOK, r.LegitLatency, r.ResponderBusy, int(r.FinalK))
	}
	tbl.Caption = "adaptive puzzles throttle hostile associations by charging attackers ~2^K hashes each"
	return out, tbl, nil
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}
