package experiments

import (
	"time"

	"hipcloud/internal/cloud"
	"hipcloud/internal/metrics"
	"hipcloud/internal/rubis"
	"hipcloud/internal/secio"
	"hipcloud/internal/workload"
)

// RTPoint is one scenario's httperf-style response-time measurement
// (§V-B: 120 req/s against one web server + DB, query cache enabled;
// paper means: basic 116.4 ms, HIP 132.2 ms, SSL 128.3 ms).
type RTPoint struct {
	Kind      secio.Kind
	Rate      float64
	Mean, Std time.Duration
	Completed int
	Errors    int
}

// RTConfig parameterizes the response-time experiment.
type RTConfig struct {
	Profile  cloud.Profile
	Rate     float64       // requests/second; default 120
	Duration time.Duration // default 30s
	Warmup   time.Duration // default 3s
	Seed     int64
}

func (c *RTConfig) fill() {
	if c.Rate <= 0 {
		c.Rate = 120
	}
	if c.Duration <= 0 {
		c.Duration = 30 * time.Second
	}
	if c.Warmup <= 0 {
		c.Warmup = 3 * time.Second
	}
	if c.Profile.Name == "" {
		c.Profile = cloud.EC2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// RunResponseTimePoint measures one scenario at the configured rate.
func RunResponseTimePoint(cfg RTConfig, kind secio.Kind) RTPoint {
	cfg.fill()
	d := Deploy(DeployConfig{
		Profile: cfg.Profile,
		Kind:    kind,
		NumWeb:  1,
		DBCache: true, // "MySQL query caching was enabled for this particular experiment"
		UseRSA:  true,
		Seed:    cfg.Seed,
		WithLB:  false,
	})
	mix := rubis.NewMix(cfg.Seed+7, d.DB.NumItems(), d.DB.NumUsers())
	addr, port := d.FrontAddr()
	w := &workload.OpenLoop{
		Transport: d.ClientT,
		Target:    addr,
		Port:      port,
		Rate:      cfg.Rate,
		Duration:  cfg.Duration,
		Warmup:    cfg.Warmup,
		NextPath:  mix.Next,
		Timeout:   8 * time.Second,
	}
	res := w.Run(d.Sim)
	d.Sim.Run(cfg.Duration + 15*time.Second)
	d.Sim.Shutdown()
	return RTPoint{
		Kind:      kind,
		Rate:      cfg.Rate,
		Mean:      res.Latency.Mean(),
		Std:       res.Latency.StdDev(),
		Completed: res.Completed,
		Errors:    res.Errors,
	}
}

// RunResponseTimes regenerates the §V-B response-time comparison.
func RunResponseTimes(cfg RTConfig) ([]RTPoint, *metrics.Table) {
	cfg.fill()
	tbl := metrics.NewTable(
		"§V-B — mean response time at 120 req/s, 1 web + 1 DB, query cache ON ("+cfg.Profile.Name+")",
		"scenario", "mean", "stddev", "completed", "errors")
	var out []RTPoint
	for _, kind := range []secio.Kind{secio.Basic, secio.HIP, secio.SSL} {
		pt := RunResponseTimePoint(cfg, kind)
		out = append(out, pt)
		tbl.Row(kind.String(), pt.Mean, pt.Std, pt.Completed, pt.Errors)
	}
	tbl.Caption = "paper: basic 116.4 ms, HIP 132.2 ms, SSL 128.3 ms — \"largely comparable\", HIP's extra from LSI translation"
	return out, tbl
}
