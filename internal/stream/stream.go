// Package stream implements a sans-io reliable byte-stream protocol
// (a compact TCP: three-way handshake, sliding window, cumulative ACKs,
// RTT-estimated retransmission timeout, fast retransmit, FIN teardown).
//
// The core is a pure state machine: segments and clock readings go in,
// segments, timer deadlines and readable/writable transitions come out.
// Drivers bind it to the netsim simulator (hipcloud/internal/netsim) or to
// real datagram transports (ESP-over-UDP in hipcloud/internal/hipudp).
package stream

import (
	"errors"
	"time"
)

// Protocol limits and defaults.
const (
	DefaultMSS        = 1400
	DefaultWindow     = 87381 // ≈85.3 KiB, the iperf window used in the paper
	DefaultSendBuf    = 256 * 1024
	DefaultInitialRTO = 200 * time.Millisecond
	MinRTO            = 20 * time.Millisecond
	MaxRTO            = 10 * time.Second
	maxRetries        = 12
)

// State is the connection state.
type State int

// Connection states (a compact subset of TCP's).
const (
	StateClosed State = iota
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateCloseWait
	StateLastAck
	StateReset
)

func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateSynSent:
		return "syn-sent"
	case StateSynRcvd:
		return "syn-rcvd"
	case StateEstablished:
		return "established"
	case StateFinWait1:
		return "fin-wait-1"
	case StateFinWait2:
		return "fin-wait-2"
	case StateCloseWait:
		return "close-wait"
	case StateLastAck:
		return "last-ack"
	case StateReset:
		return "reset"
	}
	return "state(?)"
}

// Errors reported by stream operations.
var (
	ErrClosed = errors.New("stream: connection closed")
	ErrReset  = errors.New("stream: connection reset")
	ErrEOF    = errors.New("stream: end of stream")
)

// BufferPool recycles payload buffers for emitted segments. Drivers that
// install one (netsim.BufPool) take ownership of Segment.Payload slices
// drained by Poll and must return each to the pool once marshaled onto the
// wire; with a nil pool, payloads are plain allocations left to the GC.
type BufferPool interface {
	// Get returns a length-n buffer with undefined contents.
	Get(n int) []byte
	// Put recycles a buffer previously returned by Get.
	Put(b []byte)
}

// Config tunes a connection.
type Config struct {
	MSS        int
	Window     int // receive window advertised to the peer
	SendBuf    int // local send buffer bound
	InitialRTO time.Duration
	// Pool, when non-nil, supplies payload buffers for outgoing segments;
	// see BufferPool for the ownership contract.
	Pool BufferPool
	// Now is the connection's epoch; segments timestamps are durations
	// from an arbitrary zero maintained by the driver.
}

func (c *Config) fill() {
	if c.MSS <= 0 {
		c.MSS = DefaultMSS
	}
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.SendBuf <= 0 {
		c.SendBuf = DefaultSendBuf
	}
	if c.InitialRTO <= 0 {
		c.InitialRTO = DefaultInitialRTO
	}
}

// Conn is a sans-io reliable stream connection. It is not safe for
// concurrent use; drivers serialize access.
type Conn struct {
	cfg   Config
	state State

	// Send side.
	sndISS  uint32
	sndUna  uint32 // oldest unacknowledged
	sndNxt  uint32 // next sequence to send
	sndBuf  []byte // unsent+unacked bytes, starting at sndUna
	peerWnd uint32
	// Congestion control (Reno-style slow start + AIMD).
	cwnd        int
	ssthresh    int
	finQueued   bool
	finSent     bool
	finSeq      uint32
	retries     int
	rtoDeadline time.Duration // zero when no timer armed
	rto         time.Duration
	srtt        time.Duration
	rttvar      time.Duration
	rttSeq      uint32 // sequence being timed
	rttStart    time.Duration
	rttTiming   bool
	dupAcks     int

	// Receive side.
	rcvISS    uint32
	rcvNxt    uint32
	rcvBuf    []byte
	oooSegs   []Segment // out-of-order segments awaiting the gap fill
	peerFin   bool
	finRcvSeq uint32

	// advertised is the receive window in the most recent outgoing
	// segment, for window-update suppression.
	advertised uint32

	// Output queue drained by Poll.
	out []Segment

	// Stats.
	Retransmits     uint64
	FastRetransmits uint64
	BytesSent       uint64
	BytesRcvd       uint64
}

// Segment flag bits.
const (
	FlagSYN = 1 << iota
	FlagACK
	FlagFIN
	FlagRST
)

// Segment is one protocol datagram.
type Segment struct {
	Flags   uint8
	Seq     uint32
	Ack     uint32
	Window  uint32
	Payload []byte
}

// HeaderSize is the marshaled segment header length in bytes.
const HeaderSize = 14

// Marshal encodes the segment.
func (s Segment) Marshal() []byte {
	b := make([]byte, HeaderSize+len(s.Payload))
	s.MarshalInto(b)
	return b
}

// MarshalInto encodes the segment into b, which must be at least
// HeaderSize+len(s.Payload) bytes; drivers use it to build wire units in
// pooled buffers without the intermediate Marshal allocation.
func (s Segment) MarshalInto(b []byte) {
	b[0] = s.Flags
	b[1] = 0
	be32(b[2:], s.Seq)
	be32(b[6:], s.Ack)
	be32(b[10:], s.Window)
	copy(b[HeaderSize:], s.Payload)
}

// ParseSegment decodes a segment; it errors on short input.
func ParseSegment(b []byte) (Segment, error) {
	if len(b) < HeaderSize {
		return Segment{}, errors.New("stream: short segment")
	}
	return Segment{
		Flags:   b[0],
		Seq:     rd32(b[2:]),
		Ack:     rd32(b[6:]),
		Window:  rd32(b[10:]),
		Payload: b[HeaderSize:],
	}, nil
}

func be32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}
func rd32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// seqLT reports a < b in sequence space.
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

// seqLE reports a <= b in sequence space.
func seqLE(a, b uint32) bool { return int32(a-b) <= 0 }

// New creates a closed connection with the given config and initial send
// sequence (drivers pick it from their RNG for determinism).
func New(cfg Config, iss uint32) *Conn {
	cfg.fill()
	return &Conn{
		cfg:      cfg,
		state:    StateClosed,
		sndISS:   iss,
		sndUna:   iss,
		sndNxt:   iss,
		peerWnd:  uint32(cfg.Window),
		rto:      cfg.InitialRTO,
		cwnd:     10 * cfg.MSS, // RFC 6928 initial window
		ssthresh: cfg.Window,
	}
}

// Cwnd reports the current congestion window in bytes.
func (c *Conn) Cwnd() int { return c.cwnd }

// State returns the connection state.
func (c *Conn) State() State { return c.state }

// Open performs an active open: the SYN is queued for Poll.
func (c *Conn) Open(now time.Duration) {
	if c.state != StateClosed {
		return
	}
	c.state = StateSynSent
	c.emit(Segment{Flags: FlagSYN, Seq: c.sndNxt, Window: uint32(c.cfg.Window)})
	c.sndNxt++ // SYN consumes one sequence number
	c.armRTO(now)
}

// Established reports whether the handshake completed.
func (c *Conn) Established() bool {
	return c.state == StateEstablished || c.state == StateFinWait1 ||
		c.state == StateFinWait2 || c.state == StateCloseWait || c.state == StateLastAck
}

// Readable reports whether Read would make progress (data buffered or EOF
// or reset pending).
func (c *Conn) Readable() bool {
	return len(c.rcvBuf) > 0 || (c.peerFin && c.rcvNxt == c.finRcvSeq+1) || c.state == StateReset
}

// Writable reports whether Write can accept at least one byte.
func (c *Conn) Writable() bool {
	if c.state == StateReset || c.finQueued {
		return false
	}
	return len(c.sndBuf) < c.cfg.SendBuf
}

// Write appends data to the send buffer, returning how much was accepted.
func (c *Conn) Write(b []byte) (int, error) {
	switch {
	case c.state == StateReset:
		return 0, ErrReset
	case c.finQueued || c.state == StateClosed:
		return 0, ErrClosed
	}
	space := c.cfg.SendBuf - len(c.sndBuf)
	if space <= 0 {
		return 0, nil
	}
	if len(b) > space {
		b = b[:space]
	}
	c.sndBuf = append(c.sndBuf, b...)
	return len(b), nil
}

// Read consumes buffered received data. When the peer has closed and all
// data is drained it returns ErrEOF.
func (c *Conn) Read(b []byte) (int, error) {
	if len(c.rcvBuf) == 0 {
		if c.state == StateReset {
			return 0, ErrReset
		}
		if c.peerFin && c.rcvNxt == c.finRcvSeq+1 {
			return 0, ErrEOF
		}
		return 0, nil
	}
	n := copy(b, c.rcvBuf)
	c.rcvBuf = c.rcvBuf[n:]
	return n, nil
}

// Buffered reports bytes available to Read.
func (c *Conn) Buffered() int { return len(c.rcvBuf) }

// Unacked reports bytes written but not yet acknowledged.
func (c *Conn) Unacked() int { return len(c.sndBuf) }

// Close initiates an orderly shutdown. Buffered data is still delivered;
// the FIN goes out after the send buffer drains.
func (c *Conn) Close() {
	switch c.state {
	case StateClosed, StateReset, StateFinWait1, StateFinWait2, StateLastAck:
		return
	}
	c.finQueued = true
}

// Abort sends RST and drops all state.
func (c *Conn) Abort() {
	if c.state == StateClosed || c.state == StateReset {
		return
	}
	c.emit(Segment{Flags: FlagRST, Seq: c.sndNxt})
	c.state = StateReset
	c.rtoDeadline = 0
}

func (c *Conn) emit(seg Segment) {
	seg.Window = c.rcvWindow()
	c.advertised = seg.Window
	c.out = append(c.out, seg)
}

// MaybeWindowUpdate queues a pure ACK re-advertising the receive window
// when it has reopened substantially since the last advertisement (the
// classic zero-window-update problem: a sender stalled on a full window
// gets no further segments to ACK). Drivers call this after draining
// reads; it reports whether an update was queued (pump afterwards).
func (c *Conn) MaybeWindowUpdate() bool {
	if !c.Established() {
		return false
	}
	w := c.rcvWindow()
	if w <= c.advertised || int(w-c.advertised) < c.cfg.Window/4 {
		return false
	}
	c.emit(Segment{Flags: FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt})
	return true
}

// payloadCopy snapshots b into a buffer the emitted segment owns — from
// the configured pool when there is one, else a fresh allocation.
func (c *Conn) payloadCopy(b []byte) []byte {
	if c.cfg.Pool != nil {
		p := c.cfg.Pool.Get(len(b))
		copy(p, b)
		return p
	}
	p := make([]byte, len(b))
	copy(p, b)
	return p
}

// payloadFree returns a payloadCopy-derived buffer to the pool, when the
// connection has one; pool-less configs leave it to the GC.
func (c *Conn) payloadFree(b []byte) {
	if c.cfg.Pool != nil {
		c.cfg.Pool.Put(b)
	}
}

func (c *Conn) rcvWindow() uint32 {
	w := c.cfg.Window - len(c.rcvBuf)
	if w < 0 {
		w = 0
	}
	return uint32(w)
}

func (c *Conn) armRTO(now time.Duration) {
	c.rtoDeadline = now + c.rto
}

// inFlight reports unacknowledged bytes on the wire.
func (c *Conn) inFlight() uint32 { return c.sndNxt - c.sndUna }

// sendWindowRemaining returns how many new payload bytes may be sent:
// the minimum of the peer's advertised window, the configured window and
// the congestion window, less bytes in flight.
func (c *Conn) sendWindowRemaining() int {
	wnd := c.peerWnd
	if wnd > uint32(c.cfg.Window) {
		wnd = uint32(c.cfg.Window)
	}
	if uint32(c.cwnd) < wnd {
		wnd = uint32(c.cwnd)
	}
	fl := c.inFlight()
	// Exclude the unacked SYN/FIN sequence slots from payload accounting.
	if fl >= wnd {
		return 0
	}
	return int(wnd - fl)
}

// OnSegment processes an inbound segment at time now.
func (c *Conn) OnSegment(seg Segment, now time.Duration) {
	if seg.Flags&FlagRST != 0 {
		if c.state != StateClosed {
			c.state = StateReset
			c.rtoDeadline = 0
		}
		return
	}
	switch c.state {
	case StateClosed:
		// Passive open.
		if seg.Flags&FlagSYN != 0 && seg.Flags&FlagACK == 0 {
			c.rcvISS = seg.Seq
			c.rcvNxt = seg.Seq + 1
			c.peerWnd = seg.Window
			c.state = StateSynRcvd
			c.emit(Segment{Flags: FlagSYN | FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt})
			c.sndNxt++
			c.armRTO(now)
		}
		return
	case StateSynSent:
		if seg.Flags&FlagSYN != 0 && seg.Flags&FlagACK != 0 && seg.Ack == c.sndNxt {
			c.rcvISS = seg.Seq
			c.rcvNxt = seg.Seq + 1
			c.peerWnd = seg.Window
			c.sndUna = seg.Ack
			c.state = StateEstablished
			c.rtoDeadline = 0
			c.retries = 0
			c.emit(Segment{Flags: FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt})
		}
		return
	case StateSynRcvd:
		if seg.Flags&FlagACK != 0 && seg.Ack == c.sndNxt {
			c.sndUna = seg.Ack
			c.peerWnd = seg.Window
			c.state = StateEstablished
			c.rtoDeadline = 0
			c.retries = 0
		}
		// A SYN retransmit: re-ack.
		if seg.Flags&FlagSYN != 0 && c.state == StateSynRcvd {
			c.emit(Segment{Flags: FlagSYN | FlagACK, Seq: c.sndNxt - 1, Ack: c.rcvNxt})
			c.armRTO(now)
			return
		}
		if c.state != StateEstablished {
			return
		}
		// Fall through to established processing for piggybacked data.
	}

	// ACK processing.
	if seg.Flags&FlagACK != 0 {
		c.processAck(seg, now)
	}
	// Payload processing.
	if len(seg.Payload) > 0 {
		c.processPayload(seg)
	}
	// FIN processing.
	if seg.Flags&FlagFIN != 0 {
		finSeq := seg.Seq + uint32(len(seg.Payload))
		if !c.peerFin {
			c.peerFin = true
			c.finRcvSeq = finSeq
		}
		if c.rcvNxt == finSeq {
			c.rcvNxt = finSeq + 1
			switch c.state {
			case StateEstablished:
				c.state = StateCloseWait
			case StateFinWait1:
				// Simultaneous close; treat as FIN-WAIT-2 + FIN.
				c.state = StateFinWait2
			case StateFinWait2:
			}
			if c.state == StateFinWait2 {
				c.state = StateClosed
				c.rtoDeadline = 0
			}
		}
		c.emit(Segment{Flags: FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt})
	}
}

func (c *Conn) processAck(seg Segment, now time.Duration) {
	c.peerWnd = seg.Window
	if seqLT(c.sndUna, seg.Ack) && seqLE(seg.Ack, c.sndNxt) {
		acked := seg.Ack - c.sndUna
		// Congestion window growth: exponential below ssthresh (slow
		// start), ~one MSS per RTT above it (congestion avoidance).
		if c.cwnd < c.ssthresh {
			c.cwnd += int(acked)
			if c.cwnd > c.ssthresh {
				c.cwnd = c.ssthresh
			}
		} else {
			c.cwnd += c.cfg.MSS * c.cfg.MSS / c.cwnd
		}
		if c.cwnd > c.cfg.SendBuf {
			c.cwnd = c.cfg.SendBuf
		}
		// The FIN consumes one sequence slot with no buffer byte.
		bufAck := acked
		if c.finSent && seg.Ack == c.finSeq+1 {
			bufAck--
		}
		if int(bufAck) > len(c.sndBuf) {
			bufAck = uint32(len(c.sndBuf))
		}
		c.sndBuf = c.sndBuf[bufAck:]
		c.sndUna = seg.Ack
		c.retries = 0
		c.dupAcks = 0
		// RTT sample if the timed sequence is covered.
		if c.rttTiming && seqLT(c.rttSeq, seg.Ack) {
			c.rttTiming = false
			c.updateRTT(now - c.rttStart)
		}
		if c.sndUna == c.sndNxt {
			c.rtoDeadline = 0 // all data acked
		} else {
			c.armRTO(now)
		}
		// FIN fully acked?
		if c.finSent && seg.Ack == c.finSeq+1 {
			switch c.state {
			case StateFinWait1:
				c.state = StateFinWait2
				if c.peerFin && c.rcvNxt == c.finRcvSeq+1 {
					c.state = StateClosed
					c.rtoDeadline = 0
				}
			case StateLastAck:
				c.state = StateClosed
				c.rtoDeadline = 0
			}
		}
	} else if seg.Ack == c.sndUna && c.inFlight() > 0 && len(seg.Payload) == 0 {
		c.dupAcks++
		if c.dupAcks == 3 {
			c.FastRetransmits++
			// Multiplicative decrease (fast recovery, simplified).
			c.ssthresh = int(c.inFlight()) / 2
			if c.ssthresh < 2*c.cfg.MSS {
				c.ssthresh = 2 * c.cfg.MSS
			}
			c.cwnd = c.ssthresh
			c.retransmit(now)
		}
	}
}

func (c *Conn) processPayload(seg Segment) {
	end := seg.Seq + uint32(len(seg.Payload))
	switch {
	case seqLE(end, c.rcvNxt):
		// Entirely old: re-ack.
		c.emit(Segment{Flags: FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt})
		return
	case seqLT(c.rcvNxt, seg.Seq):
		// Future data: buffer out of order (bounded) and dup-ack.
		if len(c.oooSegs) < 256 {
			cp := seg
			cp.Payload = c.payloadCopy(seg.Payload)
			c.oooSegs = append(c.oooSegs, cp)
		}
		c.emit(Segment{Flags: FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt})
		return
	}
	// Overlapping or exact: take the new part.
	skip := c.rcvNxt - seg.Seq
	data := seg.Payload[skip:]
	room := c.cfg.Window - len(c.rcvBuf)
	if len(data) > room {
		data = data[:room]
	}
	c.rcvBuf = append(c.rcvBuf, data...)
	c.rcvNxt += uint32(len(data))
	c.BytesRcvd += uint64(len(data))
	// Drain any out-of-order segments that are now contiguous.
	progress := true
	for progress {
		progress = false
		for i := 0; i < len(c.oooSegs); i++ {
			o := c.oooSegs[i]
			oEnd := o.Seq + uint32(len(o.Payload))
			if seqLE(oEnd, c.rcvNxt) {
				c.payloadFree(o.Payload)
				c.oooSegs = append(c.oooSegs[:i], c.oooSegs[i+1:]...)
				progress = true
				break
			}
			if seqLE(o.Seq, c.rcvNxt) && seqLT(c.rcvNxt, oEnd) {
				d := o.Payload[c.rcvNxt-o.Seq:]
				room := c.cfg.Window - len(c.rcvBuf)
				if len(d) > room {
					d = d[:room]
				}
				c.rcvBuf = append(c.rcvBuf, d...)
				c.rcvNxt += uint32(len(d))
				c.BytesRcvd += uint64(len(d))
				c.payloadFree(o.Payload)
				c.oooSegs = append(c.oooSegs[:i], c.oooSegs[i+1:]...)
				progress = true
				break
			}
		}
	}
	c.emit(Segment{Flags: FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt})
}

func (c *Conn) updateRTT(sample time.Duration) {
	if sample <= 0 {
		sample = time.Microsecond
	}
	if c.srtt == 0 {
		c.srtt = sample
		c.rttvar = sample / 2
	} else {
		d := c.srtt - sample
		if d < 0 {
			d = -d
		}
		c.rttvar = (3*c.rttvar + d) / 4
		c.srtt = (7*c.srtt + sample) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < MinRTO {
		c.rto = MinRTO
	}
	if c.rto > MaxRTO {
		c.rto = MaxRTO
	}
}

// SRTT returns the smoothed RTT estimate (zero before the first sample).
func (c *Conn) SRTT() time.Duration { return c.srtt }

// OnTimer must be called by the driver when the deadline from Poll expires.
func (c *Conn) OnTimer(now time.Duration) {
	if c.rtoDeadline == 0 || now < c.rtoDeadline {
		return
	}
	c.retries++
	if c.retries > maxRetries {
		c.state = StateReset
		c.rtoDeadline = 0
		return
	}
	c.rto *= 2
	if c.rto > MaxRTO {
		c.rto = MaxRTO
	}
	c.rttTiming = false
	// Timeout: collapse to one segment and halve the threshold.
	c.ssthresh = int(c.inFlight()) / 2
	if c.ssthresh < 2*c.cfg.MSS {
		c.ssthresh = 2 * c.cfg.MSS
	}
	c.cwnd = c.cfg.MSS
	switch c.state {
	case StateSynSent:
		c.emit(Segment{Flags: FlagSYN, Seq: c.sndISS, Window: uint32(c.cfg.Window)})
		c.armRTO(now)
	case StateSynRcvd:
		c.emit(Segment{Flags: FlagSYN | FlagACK, Seq: c.sndNxt - 1, Ack: c.rcvNxt})
		c.armRTO(now)
	default:
		c.Retransmits++
		c.retransmit(now)
	}
}

// retransmit resends the earliest unacknowledged segment.
func (c *Conn) retransmit(now time.Duration) {
	// Karn's algorithm: once any part of the window is retransmitted, an
	// ACK covering the timed sequence may be for either transmission, so
	// the in-flight RTT measurement must be discarded — not just on RTO
	// (OnTimer clears it too) but also on fast retransmit, which reaches
	// here without a timeout. Sampling the ambiguous ACK would feed a
	// wrong RTT into SRTT and collapse or inflate the RTO under loss.
	c.rttTiming = false
	if c.finSent && c.sndUna == c.finSeq {
		c.emit(Segment{Flags: FlagFIN | FlagACK, Seq: c.finSeq, Ack: c.rcvNxt})
		c.armRTO(now)
		return
	}
	n := len(c.sndBuf)
	if n == 0 {
		return
	}
	if n > c.cfg.MSS {
		n = c.cfg.MSS
	}
	unsentStart := int(c.sndNxt - c.sndUna)
	if c.finSent {
		unsentStart-- // FIN slot is not in sndBuf
	}
	if n > unsentStart {
		n = unsentStart
	}
	if n <= 0 {
		return
	}
	payload := c.payloadCopy(c.sndBuf[:n])
	c.emit(Segment{Flags: FlagACK, Seq: c.sndUna, Ack: c.rcvNxt, Payload: payload})
	c.armRTO(now)
}

// Poll drains pending output: it first packetizes new send-buffer data
// permitted by the window, then returns queued segments and the next timer
// deadline (zero when no timer is armed).
func (c *Conn) Poll(now time.Duration) ([]Segment, time.Duration) {
	if c.Established() && c.state != StateLastAck {
		c.packetize(now)
	}
	out := c.out
	c.out = nil
	return out, c.rtoDeadline
}

func (c *Conn) packetize(now time.Duration) {
	for {
		unsentStart := int(c.sndNxt - c.sndUna)
		if c.finSent {
			break
		}
		avail := len(c.sndBuf) - unsentStart
		if avail <= 0 {
			break
		}
		wnd := c.sendWindowRemaining()
		if wnd <= 0 {
			break
		}
		n := avail
		if n > c.cfg.MSS {
			n = c.cfg.MSS
		}
		if n > wnd {
			n = wnd
		}
		payload := c.payloadCopy(c.sndBuf[unsentStart : unsentStart+n])
		seg := Segment{Flags: FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt, Payload: payload}
		if !c.rttTiming {
			c.rttTiming = true
			c.rttSeq = c.sndNxt
			c.rttStart = now
		}
		c.sndNxt += uint32(n)
		c.BytesSent += uint64(n)
		c.emit(seg)
		if c.rtoDeadline == 0 {
			c.armRTO(now)
		}
	}
	// Send FIN once the buffer is fully packetized.
	if c.finQueued && !c.finSent && int(c.sndNxt-c.sndUna) == len(c.sndBuf) {
		c.finSent = true
		c.finSeq = c.sndNxt
		c.emit(Segment{Flags: FlagFIN | FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt})
		c.sndNxt++
		switch c.state {
		case StateEstablished:
			c.state = StateFinWait1
		case StateCloseWait:
			c.state = StateLastAck
		}
		c.armRTO(now)
	}
}
