package stream

import (
	"bytes"
	"container/heap"
	"math/rand"
	"testing"
	"time"
)

// wireEvent is a scheduled delivery or timer check in the test harness.
type wireEvent struct {
	at  time.Duration
	seq int
	fn  func(now time.Duration)
}

type wireHeap []wireEvent

func (h wireHeap) Len() int { return len(h) }
func (h wireHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h wireHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *wireHeap) Push(x interface{}) { *h = append(*h, x.(wireEvent)) }
func (h *wireHeap) Pop() interface{} {
	old := *h
	ev := old[len(old)-1]
	*h = old[:len(old)-1]
	return ev
}

// harness runs two sans-io conns over a simulated wire.
type harness struct {
	a, b    *Conn
	now     time.Duration
	events  wireHeap
	seq     int
	latency time.Duration
	loss    float64
	reorder time.Duration // random extra delay up to this
	rng     *rand.Rand
}

func newHarness(latency time.Duration, loss float64) *harness {
	h := &harness{
		a:       New(Config{}, 1000),
		b:       New(Config{}, 5000),
		latency: latency,
		loss:    loss,
		rng:     rand.New(rand.NewSource(7)),
	}
	return h
}

func (h *harness) at(d time.Duration, fn func(now time.Duration)) {
	h.seq++
	heap.Push(&h.events, wireEvent{at: h.now + d, seq: h.seq, fn: fn})
}

// pump flushes output of both conns onto the wire and rearms timers.
func (h *harness) pump() {
	for _, pair := range []struct{ from, to *Conn }{{h.a, h.b}, {h.b, h.a}} {
		from, to := pair.from, pair.to
		segs, deadline := from.Poll(h.now)
		for _, seg := range segs {
			if h.rng.Float64() < h.loss {
				continue
			}
			d := h.latency
			if h.reorder > 0 {
				d += time.Duration(h.rng.Int63n(int64(h.reorder)))
			}
			seg := seg
			h.at(d, func(now time.Duration) {
				to.OnSegment(seg, now)
				h.pump()
			})
		}
		if deadline > 0 {
			conn := from
			h.at(deadline-h.now, func(now time.Duration) {
				conn.OnTimer(now)
				h.pump()
			})
		}
	}
}

// run processes events until quiescent or the horizon passes.
func (h *harness) run(horizon time.Duration) {
	for len(h.events) > 0 {
		ev := heap.Pop(&h.events).(wireEvent)
		if ev.at > horizon {
			h.now = horizon
			return
		}
		h.now = ev.at
		ev.fn(h.now)
	}
}

func (h *harness) connect(t *testing.T) {
	t.Helper()
	h.a.Open(h.now)
	h.pump()
	h.run(10 * time.Second)
	if !h.a.Established() || !h.b.Established() {
		t.Fatalf("handshake failed: a=%v b=%v", h.a.State(), h.b.State())
	}
}

func TestHandshake(t *testing.T) {
	h := newHarness(time.Millisecond, 0)
	h.connect(t)
	if h.a.State() != StateEstablished || h.b.State() != StateEstablished {
		t.Fatalf("states a=%v b=%v", h.a.State(), h.b.State())
	}
}

// transfer writes data on from, reads on to (draining as it goes), and
// returns what arrived.
func (h *harness) transfer(t *testing.T, from, to *Conn, data []byte, horizon time.Duration) []byte {
	if t != nil {
		t.Helper()
	}
	var got []byte
	written := 0
	buf := make([]byte, 4096)
	step := func() {
		for {
			n, _ := to.Read(buf)
			if n == 0 {
				break
			}
			got = append(got, buf[:n]...)
		}
		if written < len(data) {
			n, err := from.Write(data[written:])
			if err != nil {
				if t != nil {
					t.Fatalf("write: %v", err)
				}
				return
			}
			written += n
		}
	}
	// Drive: re-run step whenever the wire quiesces, up to horizon.
	deadline := h.now + horizon
	for h.now < deadline {
		step()
		h.pump()
		if len(h.events) == 0 {
			step()
			h.pump()
			if len(h.events) == 0 {
				break
			}
		}
		ev := heap.Pop(&h.events).(wireEvent)
		h.now = ev.at
		ev.fn(h.now)
	}
	step()
	return got
}

func TestBulkTransfer(t *testing.T) {
	h := newHarness(time.Millisecond, 0)
	h.connect(t)
	data := make([]byte, 500_000)
	rand.New(rand.NewSource(3)).Read(data)
	got := h.transfer(t, h.a, h.b, data, time.Minute)
	if !bytes.Equal(got, data) {
		t.Fatalf("transfer mismatch: got %d bytes, want %d", len(got), len(data))
	}
}

func TestTransferUnderLoss(t *testing.T) {
	h := newHarness(2*time.Millisecond, 0.05)
	h.connect(t)
	data := make([]byte, 200_000)
	rand.New(rand.NewSource(4)).Read(data)
	got := h.transfer(t, h.a, h.b, data, 5*time.Minute)
	if !bytes.Equal(got, data) {
		t.Fatalf("lossy transfer mismatch: got %d bytes, want %d", len(got), len(data))
	}
	if h.a.Retransmits == 0 && h.a.FastRetransmits == 0 {
		t.Fatal("expected retransmissions under 5% loss")
	}
}

func TestKarnFastRetransmitDiscardsRTTSample(t *testing.T) {
	// Karn's algorithm: after a retransmission, an ACK covering the timed
	// sequence is ambiguous (original or retransmit?) and must not be
	// sampled. The RTO path always cleared the measurement; the fast
	// retransmit path did not, feeding bogus samples to the estimator.
	h := newHarness(time.Millisecond, 0)
	h.connect(t)
	a := h.a
	data := make([]byte, 5*a.cfg.MSS)
	if _, err := a.Write(data); err != nil {
		t.Fatal(err)
	}
	segs, _ := a.Poll(h.now)
	if len(segs) < 4 {
		t.Fatalf("want ≥4 segments in flight, got %d", len(segs))
	}
	if !a.rttTiming {
		t.Fatal("no RTT measurement armed after packetize")
	}
	srttBefore := a.srtt

	// First segment "lost": three duplicate ACKs at sndUna trigger fast
	// retransmit of the timed segment.
	dup := Segment{Flags: FlagACK, Ack: a.sndUna, Window: 65535}
	for i := 0; i < 3; i++ {
		a.OnSegment(dup, h.now+time.Duration(i)*time.Millisecond)
	}
	if a.FastRetransmits != 1 {
		t.Fatalf("fast retransmits = %d, want 1", a.FastRetransmits)
	}
	if a.rttTiming {
		t.Fatal("Karn violation: RTT measurement still armed after fast retransmit")
	}

	// The cumulative ACK arrives suspiciously late — if it were sampled,
	// SRTT would jump to ~3s. It must be ignored.
	late := h.now + 3*time.Second
	a.OnSegment(Segment{Flags: FlagACK, Ack: a.sndNxt, Window: 65535}, late)
	if a.srtt != srttBefore {
		t.Fatalf("ambiguous ACK was sampled: srtt %v -> %v", srttBefore, a.srtt)
	}
}

func TestRTOConvergesUnderLoss(t *testing.T) {
	// On a 2ms lossy link the RTT estimator must converge to the real
	// ~4ms RTT instead of drifting on ambiguous retransmission samples;
	// a poisoned estimator shows up as a wildly inflated SRTT/RTO.
	h := newHarness(2*time.Millisecond, 0.08)
	h.connect(t)
	data := make([]byte, 120_000)
	rand.New(rand.NewSource(9)).Read(data)
	got := h.transfer(t, h.a, h.b, data, 5*time.Minute)
	if !bytes.Equal(got, data) {
		t.Fatalf("lossy transfer mismatch: got %d bytes, want %d", len(got), len(data))
	}
	if h.a.Retransmits == 0 && h.a.FastRetransmits == 0 {
		t.Fatal("expected retransmissions under 8% loss")
	}
	if h.a.SRTT() > 20*time.Millisecond {
		t.Errorf("SRTT = %v did not converge near the 4ms path RTT", h.a.SRTT())
	}
	// One clean exchange collapses any in-progress timeout backoff; the
	// recomputed RTO must then sit near srtt+4·rttvar, not seconds out.
	h.loss = 0
	clean := h.transfer(t, h.a, h.b, []byte("resample"), time.Minute)
	if string(clean) != "resample" {
		t.Fatalf("clean resample transfer got %q", clean)
	}
	if h.a.rto > 200*time.Millisecond {
		t.Errorf("RTO = %v after resample, want near the 4ms path RTT", h.a.rto)
	}
}

func TestTransferWithReordering(t *testing.T) {
	h := newHarness(time.Millisecond, 0)
	h.reorder = 3 * time.Millisecond
	h.connect(t)
	data := make([]byte, 100_000)
	rand.New(rand.NewSource(5)).Read(data)
	got := h.transfer(t, h.a, h.b, data, time.Minute)
	if !bytes.Equal(got, data) {
		t.Fatalf("reordered transfer mismatch: got %d bytes, want %d", len(got), len(data))
	}
}

func TestBidirectional(t *testing.T) {
	h := newHarness(time.Millisecond, 0)
	h.connect(t)
	dataAB := bytes.Repeat([]byte("ab"), 20_000)
	dataBA := bytes.Repeat([]byte("ba"), 20_000)
	h.a.Write(dataAB)
	h.b.Write(dataBA)
	var gotB, gotA []byte
	buf := make([]byte, 4096)
	h.pump()
	for i := 0; i < 200_000 && len(h.events) > 0; i++ {
		ev := heap.Pop(&h.events).(wireEvent)
		h.now = ev.at
		ev.fn(h.now)
		for {
			n, _ := h.b.Read(buf)
			if n == 0 {
				break
			}
			gotB = append(gotB, buf[:n]...)
		}
		for {
			n, _ := h.a.Read(buf)
			if n == 0 {
				break
			}
			gotA = append(gotA, buf[:n]...)
		}
		h.pump()
	}
	if !bytes.Equal(gotB, dataAB) || !bytes.Equal(gotA, dataBA) {
		t.Fatalf("bidirectional mismatch: b got %d/%d, a got %d/%d",
			len(gotB), len(dataAB), len(gotA), len(dataBA))
	}
}

func TestCloseDeliversEOF(t *testing.T) {
	h := newHarness(time.Millisecond, 0)
	h.connect(t)
	h.a.Write([]byte("final words"))
	h.a.Close()
	h.pump()
	h.run(10 * time.Second)
	buf := make([]byte, 64)
	n, err := h.b.Read(buf)
	if err != nil || string(buf[:n]) != "final words" {
		t.Fatalf("read = %q, %v", buf[:n], err)
	}
	if _, err := h.b.Read(buf); err != ErrEOF {
		t.Fatalf("err = %v, want ErrEOF", err)
	}
	// Close the other side too; both should reach Closed.
	h.b.Close()
	h.pump()
	h.run(20 * time.Second)
	if h.a.State() != StateClosed || h.b.State() != StateClosed {
		t.Fatalf("states after close: a=%v b=%v", h.a.State(), h.b.State())
	}
}

func TestAbortResetsPeer(t *testing.T) {
	h := newHarness(time.Millisecond, 0)
	h.connect(t)
	h.a.Abort()
	h.pump()
	h.run(time.Second)
	if h.b.State() != StateReset {
		t.Fatalf("peer state = %v, want reset", h.b.State())
	}
	if _, err := h.b.Read(make([]byte, 1)); err != ErrReset {
		t.Fatalf("read err = %v, want ErrReset", err)
	}
	if _, err := h.b.Write([]byte("x")); err != ErrReset {
		t.Fatalf("write err = %v, want ErrReset", err)
	}
}

func TestWindowLimitsInFlight(t *testing.T) {
	cfgSmall := Config{Window: 4096, MSS: 1024}
	a := New(cfgSmall, 1)
	b := New(cfgSmall, 2)
	h := &harness{a: a, b: b, latency: 50 * time.Millisecond, rng: rand.New(rand.NewSource(1))}
	h.connect(t)
	a.Write(make([]byte, 64*1024))
	segs, _ := a.Poll(h.now)
	var payload int
	for _, s := range segs {
		payload += len(s.Payload)
	}
	if payload > 4096 {
		t.Fatalf("in flight %d bytes exceeds 4096 window", payload)
	}
}

func TestSegmentMarshalRoundTrip(t *testing.T) {
	in := Segment{Flags: FlagACK | FlagFIN, Seq: 0xdeadbeef, Ack: 0x01020304, Window: 87381, Payload: []byte("payload")}
	out, err := ParseSegment(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if out.Flags != in.Flags || out.Seq != in.Seq || out.Ack != in.Ack || out.Window != in.Window || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}
	if _, err := ParseSegment(make([]byte, HeaderSize-1)); err == nil {
		t.Fatal("short segment parsed")
	}
}

func TestSeqCompareWraparound(t *testing.T) {
	if !seqLT(0xfffffff0, 0x10) {
		t.Fatal("seqLT should handle wraparound")
	}
	if seqLT(0x10, 0xfffffff0) {
		t.Fatal("seqLT inverted at wraparound")
	}
	if !seqLE(5, 5) {
		t.Fatal("seqLE should be reflexive")
	}
}

func TestRTTEstimator(t *testing.T) {
	c := New(Config{}, 0)
	c.updateRTT(100 * time.Millisecond)
	if c.srtt != 100*time.Millisecond {
		t.Fatalf("first srtt = %v", c.srtt)
	}
	c.updateRTT(200 * time.Millisecond)
	if c.srtt <= 100*time.Millisecond || c.srtt >= 200*time.Millisecond {
		t.Fatalf("smoothed srtt = %v, want between samples", c.srtt)
	}
	if c.rto < MinRTO {
		t.Fatalf("rto below floor: %v", c.rto)
	}
}

func TestRetransmitAfterTotalBlackout(t *testing.T) {
	h := newHarness(time.Millisecond, 1.0) // everything dropped
	h.a.Open(h.now)
	h.pump()
	h.run(5 * time.Minute)
	if h.a.State() != StateReset {
		t.Fatalf("state = %v, want reset after max retries", h.a.State())
	}
	if h.a.retries <= 3 {
		t.Fatalf("retries = %d, expected many", h.a.retries)
	}
}

func TestTransferPropertyRandomSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		size := 1 + rng.Intn(60_000)
		loss := float64(rng.Intn(8)) / 100
		h := newHarness(time.Duration(1+rng.Intn(5))*time.Millisecond, loss)
		h.connect(t)
		data := make([]byte, size)
		rng.Read(data)
		got := h.transfer(t, h.a, h.b, data, 10*time.Minute)
		if !bytes.Equal(got, data) {
			t.Fatalf("trial %d (size=%d loss=%.2f): mismatch got %d bytes", trial, size, loss, len(got))
		}
	}
}

func TestCongestionSlowStartGrowth(t *testing.T) {
	h := newHarness(time.Millisecond, 0)
	h.connect(t)
	initial := h.a.Cwnd()
	data := make([]byte, 200_000)
	got := h.transfer(t, h.a, h.b, data, time.Minute)
	if len(got) != len(data) {
		t.Fatalf("transfer incomplete: %d", len(got))
	}
	if h.a.Cwnd() <= initial {
		t.Fatalf("cwnd did not grow: %d -> %d", initial, h.a.Cwnd())
	}
}

func TestCongestionBackoffOnLoss(t *testing.T) {
	h := newHarness(2*time.Millisecond, 0)
	h.connect(t)
	// Grow the window with a clean transfer first.
	h.transfer(t, h.a, h.b, make([]byte, 300_000), time.Minute)
	grown := h.a.Cwnd()
	// Then introduce loss: the window must come down.
	h.loss = 0.08
	h.transfer(t, h.a, h.b, make([]byte, 300_000), 5*time.Minute)
	if h.a.Cwnd() >= grown {
		t.Fatalf("cwnd did not back off under loss: %d -> %d", grown, h.a.Cwnd())
	}
	if h.a.Retransmits == 0 && h.a.FastRetransmits == 0 {
		t.Fatal("no retransmissions recorded under loss")
	}
}

func TestCongestionWindowBoundsInFlight(t *testing.T) {
	a := New(Config{Window: 1 << 20, SendBuf: 1 << 20, MSS: 1000}, 1)
	b := New(Config{Window: 1 << 20, SendBuf: 1 << 20, MSS: 1000}, 2)
	h := &harness{a: a, b: b, latency: 50 * time.Millisecond, rng: rand.New(rand.NewSource(1))}
	h.connect(t)
	a.Write(make([]byte, 1<<20))
	segs, _ := a.Poll(h.now)
	var inflight int
	for _, s := range segs {
		inflight += len(s.Payload)
	}
	if inflight > a.Cwnd() {
		t.Fatalf("in flight %d exceeds cwnd %d", inflight, a.Cwnd())
	}
}

func BenchmarkSansIOTransfer(b *testing.B) {
	// End-to-end sans-io throughput: how fast the harness can move bytes
	// through two connected state machines (no real network).
	data := make([]byte, 1<<20)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		h := &harness{a: New(Config{}, 1), b: New(Config{}, 2), latency: 100 * time.Microsecond, rng: rand.New(rand.NewSource(1))}
		h.a.Open(h.now)
		h.pump()
		h.run(10 * time.Second)
		if !h.a.Established() {
			b.Fatal("handshake failed")
		}
		got := h.transfer(nil, h.a, h.b, data, time.Minute)
		if len(got) != len(data) {
			b.Fatalf("moved %d of %d", len(got), len(data))
		}
	}
}
