package microhttp

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzReadRequest must never panic; accepted requests must re-serialize.
func FuzzReadRequest(f *testing.F) {
	var buf bytes.Buffer
	WriteRequest(&buf, &Request{Method: "GET", Path: "/item/1", Headers: map[string]string{"Host": "h"}, Body: []byte("b")})
	f.Add(buf.Bytes())
	f.Add([]byte("GET / HTTP/1.1\r\n\r\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ReadRequest(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteRequest(&out, req); err != nil {
			t.Fatalf("accepted request failed to serialize: %v", err)
		}
	})
}

// FuzzReadResponse mirrors FuzzReadRequest for responses.
func FuzzReadResponse(f *testing.F) {
	var buf bytes.Buffer
	WriteResponse(&buf, &Response{Status: 200, Body: []byte("ok")})
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := ReadResponse(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteResponse(&out, resp); err != nil {
			t.Fatalf("accepted response failed to serialize: %v", err)
		}
	})
}
