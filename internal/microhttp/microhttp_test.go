package microhttp

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestRequestRoundTrip(t *testing.T) {
	req := &Request{
		Method:  "GET",
		Path:    "/items/42?bid=1",
		Headers: map[string]string{"Host": "rubis", "X-Tenant": "acme"},
		Body:    []byte("payload"),
	}
	var buf bytes.Buffer
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != "GET" || got.Path != req.Path {
		t.Fatalf("request line: %+v", got)
	}
	if got.Header("host") != "rubis" || got.Header("x-tenant") != "acme" {
		t.Fatalf("headers: %+v", got.Headers)
	}
	if !bytes.Equal(got.Body, req.Body) {
		t.Fatalf("body: %q", got.Body)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := &Response{
		Status:  200,
		Headers: map[string]string{"Content-Type": "text/html", "Connection": "close"},
		Body:    bytes.Repeat([]byte("x"), 5000),
	}
	var buf bytes.Buffer
	if err := WriteResponse(&buf, resp); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponse(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != 200 || !got.WantsClose() || len(got.Body) != 5000 {
		t.Fatalf("response: status=%d close=%v len=%d", got.Status, got.WantsClose(), len(got.Body))
	}
}

func TestEmptyBodyAndPipelinedMessages(t *testing.T) {
	var buf bytes.Buffer
	WriteRequest(&buf, &Request{Method: "GET", Path: "/a"})
	WriteRequest(&buf, &Request{Method: "GET", Path: "/b"})
	br := bufio.NewReader(&buf)
	r1, err := ReadRequest(br)
	if err != nil || r1.Path != "/a" || len(r1.Body) != 0 {
		t.Fatalf("first: %+v %v", r1, err)
	}
	r2, err := ReadRequest(br)
	if err != nil || r2.Path != "/b" {
		t.Fatalf("second: %+v %v", r2, err)
	}
}

func TestMalformedInputs(t *testing.T) {
	cases := []string{
		"GARBAGE\r\n\r\n",
		"GET /\r\n\r\n", // missing version
		"GET / HTTP/1.1\r\nNoColonHeader\r\n\r\n",      // bad header
		"HTTP/1.1 banana OK\r\n\r\n",                   // bad status
		"GET / HTTP/1.1\r\nContent-Length: -5\r\n\r\n", // negative length
	}
	for _, c := range cases {
		br := bufio.NewReader(strings.NewReader(c))
		if strings.HasPrefix(c, "HTTP/") {
			if _, err := ReadResponse(br); err == nil {
				t.Errorf("accepted response %q", c)
			}
		} else if _, err := ReadRequest(br); err == nil {
			t.Errorf("accepted request %q", c)
		}
	}
}

func TestTruncatedBody(t *testing.T) {
	raw := "HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nshort"
	if _, err := ReadResponse(bufio.NewReader(strings.NewReader(raw))); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestOversizeBodyRejected(t *testing.T) {
	raw := "HTTP/1.1 200 OK\r\nContent-Length: 999999999\r\n\r\n"
	if _, err := ReadResponse(bufio.NewReader(strings.NewReader(raw))); err != ErrTooLarge {
		t.Fatal("oversize body not rejected")
	}
}

func TestRoundTripHelper(t *testing.T) {
	// Fake server: read request from a, write response to b.
	var a2b, b2a bytes.Buffer
	type rw struct {
		*bytes.Buffer
		w *bytes.Buffer
	}
	// Serve manually.
	WriteResponse(&b2a, &Response{Status: 404})
	client := struct {
		*bytes.Buffer
	}{&a2b}
	_ = client
	resp, err := RoundTrip(&a2b, bufio.NewReader(&b2a), &Request{Method: "GET", Path: "/missing"})
	if err != nil || resp.Status != 404 {
		t.Fatalf("roundtrip: %+v %v", resp, err)
	}
	// The request actually went out.
	req, err := ReadRequest(bufio.NewReader(&a2b))
	if err != nil || req.Path != "/missing" {
		t.Fatalf("server side: %+v %v", req, err)
	}
}

// Property: any request with printable method/path and arbitrary body
// round-trips.
func TestRequestProperty(t *testing.T) {
	f := func(body []byte, pathSeed uint32) bool {
		if len(body) > 4096 {
			body = body[:4096]
		}
		req := &Request{
			Method:  "POST",
			Path:    "/p/" + itoa(pathSeed),
			Headers: map[string]string{"Host": "h"},
			Body:    body,
		}
		var buf bytes.Buffer
		if err := WriteRequest(&buf, req); err != nil {
			return false
		}
		got, err := ReadRequest(bufio.NewReader(&buf))
		if err != nil {
			return false
		}
		return got.Path == req.Path && bytes.Equal(got.Body, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func itoa(v uint32) string {
	const digits = "0123456789"
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{digits[v%10]}, b...)
		v /= 10
	}
	return string(b)
}
