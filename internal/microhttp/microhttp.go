// Package microhttp is a minimal HTTP/1.1 codec that runs over any
// io.ReadWriter — real TCP sockets, simulated streams
// (hipcloud/internal/simtcp) and TLS channels
// (hipcloud/internal/tlslite) alike. It supports Content-Length framing,
// persistent connections and Connection: close, which is all the RUBiS
// service, the reverse proxy and the workload generators need.
package microhttp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Limits protecting parsers from hostile input.
const (
	MaxHeaderBytes = 64 * 1024
	MaxBodyBytes   = 16 << 20
)

// Errors returned by the codec.
var (
	ErrMalformed = errors.New("microhttp: malformed message")
	ErrTooLarge  = errors.New("microhttp: message too large")
)

// Request is an HTTP request.
type Request struct {
	Method  string
	Path    string
	Headers map[string]string
	Body    []byte
}

// Response is an HTTP response.
type Response struct {
	Status  int
	Headers map[string]string
	Body    []byte
}

// Header returns a header value (case-insensitive key).
func header(h map[string]string, key string) string {
	for k, v := range h {
		if strings.EqualFold(k, key) {
			return v
		}
	}
	return ""
}

// Header returns a request header (case-insensitive).
func (r *Request) Header(key string) string { return header(r.Headers, key) }

// Header returns a response header (case-insensitive).
func (r *Response) Header(key string) string { return header(r.Headers, key) }

// WantsClose reports whether the message asked for Connection: close.
func (r *Request) WantsClose() bool {
	return strings.EqualFold(r.Header("Connection"), "close")
}

// WantsClose reports whether the response asked for Connection: close.
func (r *Response) WantsClose() bool {
	return strings.EqualFold(r.Header("Connection"), "close")
}

// statusText covers the codes the stack emits.
func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 301:
		return "Moved Permanently"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	case 502:
		return "Bad Gateway"
	case 503:
		return "Service Unavailable"
	}
	return "Status"
}

// WriteRequest serializes a request.
func WriteRequest(w io.Writer, req *Request) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s HTTP/1.1\r\n", req.Method, req.Path)
	writeHeaders(&b, req.Headers, len(req.Body))
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	if len(req.Body) > 0 {
		if _, err := w.Write(req.Body); err != nil {
			return err
		}
	}
	return nil
}

// WriteResponse serializes a response.
func WriteResponse(w io.Writer, resp *Response) error {
	var b strings.Builder
	fmt.Fprintf(&b, "HTTP/1.1 %d %s\r\n", resp.Status, statusText(resp.Status))
	writeHeaders(&b, resp.Headers, len(resp.Body))
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	if len(resp.Body) > 0 {
		if _, err := w.Write(resp.Body); err != nil {
			return err
		}
	}
	return nil
}

func writeHeaders(b *strings.Builder, h map[string]string, bodyLen int) {
	keys := make([]string, 0, len(h))
	explicitLen := false
	for k := range h {
		if strings.EqualFold(k, "Content-Length") {
			explicitLen = true
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, "%s: %s\r\n", k, h[k])
	}
	if !explicitLen {
		fmt.Fprintf(b, "Content-Length: %d\r\n", bodyLen)
	}
	b.WriteString("\r\n")
}

// ReadRequest parses one request from br.
func ReadRequest(br *bufio.Reader) (*Request, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/1.") {
		return nil, ErrMalformed
	}
	req := &Request{Method: parts[0], Path: parts[1]}
	req.Headers, err = readHeaders(br)
	if err != nil {
		return nil, err
	}
	req.Body, err = readBody(br, req.Headers)
	return req, err
}

// ReadResponse parses one response from br.
func ReadResponse(br *bufio.Reader) (*Response, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/1.") {
		return nil, ErrMalformed
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil || status < 100 || status > 599 {
		return nil, ErrMalformed
	}
	resp := &Response{Status: status}
	resp.Headers, err = readHeaders(br)
	if err != nil {
		return nil, err
	}
	resp.Body, err = readBody(br, resp.Headers)
	return resp, err
}

func readLine(br *bufio.Reader) (string, error) {
	var sb strings.Builder
	for {
		chunk, isPrefix, err := br.ReadLine()
		if err != nil {
			return "", err
		}
		sb.Write(chunk)
		if sb.Len() > MaxHeaderBytes {
			return "", ErrTooLarge
		}
		if !isPrefix {
			return sb.String(), nil
		}
	}
}

func readHeaders(br *bufio.Reader) (map[string]string, error) {
	h := make(map[string]string)
	total := 0
	for {
		line, err := readLine(br)
		if err != nil {
			return nil, err
		}
		if line == "" {
			return h, nil
		}
		total += len(line)
		if total > MaxHeaderBytes {
			return nil, ErrTooLarge
		}
		idx := strings.IndexByte(line, ':')
		if idx <= 0 {
			return nil, ErrMalformed
		}
		h[strings.TrimSpace(line[:idx])] = strings.TrimSpace(line[idx+1:])
	}
}

func readBody(br *bufio.Reader, h map[string]string) ([]byte, error) {
	cl := header(h, "Content-Length")
	if cl == "" {
		return nil, nil
	}
	n, err := strconv.Atoi(cl)
	if err != nil || n < 0 {
		return nil, ErrMalformed
	}
	if n > MaxBodyBytes {
		return nil, ErrTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, err
	}
	return body, nil
}

// RoundTrip writes req and reads the response over rw (one in-flight
// request; persistent connections supported by repeated calls).
func RoundTrip(rw io.ReadWriter, br *bufio.Reader, req *Request) (*Response, error) {
	if err := WriteRequest(rw, req); err != nil {
		return nil, err
	}
	return ReadResponse(br)
}
