// Teredonat: the paper's "power user" path. A developer's workstation
// sits behind a NAT with no public address and no native IPv6; a cloud VM
// must stay reachable for administration. The workstation qualifies with
// a Teredo server, obtains a Teredo IPv6 address, and runs the HIP base
// exchange through the tunnel — authenticated, encrypted SSH-style access
// with no port forwarding configured on the NAT.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"hipcloud/internal/hip"
	"hipcloud/internal/hipsim"
	"hipcloud/internal/identity"
	"hipcloud/internal/netsim"
	"hipcloud/internal/simtcp"
	"hipcloud/internal/teredo"
)

func main() {
	sim := netsim.New(5)
	n := netsim.NewNetwork(sim)
	must := netip.MustParseAddr

	// Topology: workstation -- NAT -- internet -- { teredo server, cloud VM }.
	internet := n.AddRouter("internet")
	laptop := n.AddNode("laptop", 4, 4)
	natBox := n.AddNode("home-nat", 2, 10)
	teredoSrv := n.AddNode("teredo-server", 4, 4)
	cloudVM := n.AddNode("cloud-vm", 2, 1)

	n.Connect(laptop, must("192.168.1.2"), natBox, must("192.168.1.1"), netsim.Link{Latency: time.Millisecond})
	n.Connect(natBox, must("203.0.113.5"), internet, must("203.0.113.254"), netsim.Link{Latency: 12 * time.Millisecond})
	n.Connect(teredoSrv, must("198.51.100.1"), internet, must("198.51.100.254"), netsim.Link{Latency: 6 * time.Millisecond})
	n.Connect(cloudVM, must("198.51.101.1"), internet, must("198.51.101.254"), netsim.Link{Latency: 4 * time.Millisecond})
	laptop.AddDefaultRoute(must("192.168.1.1"))
	natBox.AddDefaultRoute(must("203.0.113.254"))
	teredoSrv.AddDefaultRoute(must("198.51.100.254"))
	cloudVM.AddDefaultRoute(must("198.51.101.254"))
	natBox.EnableNAT(netsim.NATPortRestricted, must("192.168.1.1"))

	// Teredo infrastructure: one public server/relay; both endpoints run
	// clients (EC2 had no native IPv6, per the paper).
	srv := teredo.NewServer(teredoSrv)
	laptopTeredo := teredo.NewClient(laptop, srv.Addr())
	vmTeredo := teredo.NewClient(cloudVM, srv.Addr())

	// HIP identities; the cloud VM only accepts the admin's HIT.
	adminID := identity.MustGenerate(identity.AlgECDSA)
	vmID := identity.MustGenerate(identity.AlgECDSA)
	reg := hipsim.NewRegistry()

	sim.Spawn("main", func(p *netsim.Proc) {
		// 1. Qualification through the NAT.
		if err := laptopTeredo.Qualify(p, 10*time.Second); err != nil {
			log.Fatalf("laptop qualification: %v", err)
		}
		if err := vmTeredo.Qualify(p, 10*time.Second); err != nil {
			log.Fatalf("vm qualification: %v", err)
		}
		_, mapped, _, _ := teredo.ParseAddress(laptopTeredo.Addr())
		fmt.Printf("laptop Teredo address: %v\n", laptopTeredo.Addr())
		fmt.Printf("  (embeds NAT mapping %v — the NAT assigned it, the laptop never knew)\n", mapped)
		fmt.Printf("cloud VM Teredo address: %v\n", vmTeredo.Addr())

		// 2. HIP over the tunnel, with an allow-list on the VM.
		adminHost, err := hip.NewHost(hip.Config{Identity: adminID, Locator: laptopTeredo.Addr()})
		if err != nil {
			log.Fatal(err)
		}
		vmHost, err := hip.NewHost(hip.Config{
			Identity: vmID, Locator: vmTeredo.Addr(),
			Policy: func(peer netip.Addr) bool { return peer == adminID.HIT() },
		})
		if err != nil {
			log.Fatal(err)
		}
		adminF := hipsim.NewWithUnderlay(laptop, adminHost, reg, laptopTeredo)
		vmF := hipsim.NewWithUnderlay(cloudVM, vmHost, reg, vmTeredo)
		adminStack := simtcp.NewStack(laptop, adminF)
		vmStack := simtcp.NewStack(cloudVM, vmF)

		// 3. "SSH" service on the VM, reachable only over HIP-in-Teredo.
		l := vmStack.MustListen(22)
		p.Spawn("sshd", func(sp *netsim.Proc) {
			for {
				c, err := l.Accept(sp, 0)
				if err != nil {
					return
				}
				conn := c
				sp.Spawn("session", func(hp *netsim.Proc) {
					defer conn.Close()
					buf := make([]byte, 256)
					if _, err := conn.Read(hp, buf); err != nil {
						return
					}
					conn.Write(hp, []byte("uptime: 42 days — authenticated via HIT "+adminID.HIT().String()))
				})
			}
		})

		// 4. Admin connects end-to-end.
		start := p.Now()
		c, err := adminStack.Dial(p, vmID.HIT(), 22, 30*time.Second)
		if err != nil {
			log.Fatalf("HIP-over-Teredo dial: %v", err)
		}
		fmt.Printf("base exchange through NAT + tunnel: %v\n", (p.Now() - start).Round(time.Millisecond))
		c.Write(p, []byte("uptime"))
		buf := make([]byte, 256)
		nr, err := c.Read(p, buf)
		if err != nil {
			log.Fatalf("read: %v", err)
		}
		fmt.Printf("vm says: %s\n", buf[:nr])
		c.Close()
	})

	sim.Run(2 * time.Minute)
	sim.Shutdown()
	fmt.Printf("teredo server relayed %d packets (triangular routing — the paper's latency cost)\n", srv.Relayed)
}
