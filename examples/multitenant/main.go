// Multitenant: the paper's core scenario in the simulated EC2 cloud. Two
// competing tenants land on the same physical hosts; tenant A protects
// its three-tier RUBiS service with HIP, a HIT-based firewall enforces
// tenant isolation at the hypervisor, and the reverse proxy terminates
// HIP toward consumers. Tenant B's co-resident VM can neither join the
// association (ACL) nor read the traffic (ESP).
package main

import (
	"fmt"
	"log"
	"time"

	"hipcloud/internal/cloud"
	"hipcloud/internal/hip"
	"hipcloud/internal/hipfw"
	"hipcloud/internal/hipsim"
	"hipcloud/internal/identity"
	"hipcloud/internal/netsim"
	"hipcloud/internal/proxy"
	"hipcloud/internal/rubis"
	"hipcloud/internal/secio"
	"hipcloud/internal/simtcp"
	"hipcloud/internal/workload"
)

func main() {
	sim := netsim.New(42)
	net_ := netsim.NewNetwork(sim)
	cl := cloud.New(net_, cloud.EC2)
	tenantA := &cloud.Tenant{Name: "acme", VLAN: 10}
	tenantB := &cloud.Tenant{Name: "rival", VLAN: 20}

	// Interleaved launches: rival VMs co-reside with acme's.
	web1 := cl.Zones[0].Launch("acme-web1", cloud.Micro, tenantA)
	spy := cl.Zones[0].Launch("rival-spy", cloud.Micro, tenantB)
	web2 := cl.Zones[0].Launch("acme-web2", cloud.Micro, tenantA)
	db := cl.Zones[0].Launch("acme-db", cloud.Large, tenantA)
	fmt.Printf("co-residency: acme-web1 and rival-spy share a host: %v\n", cloud.CoResident(web1, spy))

	// HIP identities for tenant A's VMs; ACL admits only those HITs.
	reg := hipsim.NewRegistry()
	acl := &hipfw.ACL{}
	costs := cloud.HIPCosts(true)
	mkHIP := func(node *netsim.Node) (*secio.Transport, *identity.HostIdentity) {
		id := identity.MustGenerate(identity.AlgECDSA)
		h, err := hip.NewHost(hip.Config{
			Identity: id, Locator: node.Addr(), Costs: costs,
			Policy: acl.PolicyFunc(), // hosts.allow semantics at the end host
		})
		if err != nil {
			log.Fatal(err)
		}
		f := hipsim.New(node, h, reg)
		acl.AllowHIT(id.HIT())
		return &secio.Transport{Kind: secio.HIP, Stack: simtcp.NewStack(node, f)}, id
	}
	web1T, web1ID := mkHIP(web1.Node)
	web2T, web2ID := mkHIP(web2.Node)
	dbT, dbID := mkHIP(db.Node)
	lbNode := cl.AttachExternal("haproxy", 8, 4)
	lbBackT, _ := mkHIP(lbNode)

	// HIP-aware midbox firewall on the zone switch: only ACL'd HITs and
	// their negotiated SPIs pass between VMs.
	mb := hipfw.NewMidbox(cl.Zones[0].Router, acl)
	mb.AllowNonHIP = true // consumers' plain HTTP to the proxy still flows

	// Tenant A's RUBiS service, web tier over HIP to the DB (by LSI, as
	// in the paper's runs).
	dataset := rubis.Populate(42, 200, 1000)
	dbLSI := reg.LSI(dbID.HIT())
	sim.Spawn("db", (&rubis.DBServer{DB: dataset, Transport: dbT}).Run)
	for i, wt := range []*secio.Transport{web1T, web2T} {
		ws := &rubis.WebServer{
			Name:      fmt.Sprintf("acme-web%d", i+1),
			Config:    rubis.DefaultWebConfig,
			Transport: wt,
			DB:        rubis.NewDBClient(wt, dbLSI, 6),
		}
		sim.Spawn(ws.Name, ws.Run)
	}

	// Reverse proxy: plain front, HIP back.
	front := &secio.Transport{Kind: secio.Basic, Stack: simtcp.NewStack(lbNode, simtcp.NewPlainFabric(lbNode))}
	lb := &proxy.Proxy{Name: "haproxy", Front: front, Back: lbBackT, Policy: proxy.RoundRobin}
	lb.AddBackend("acme-web1", reg.LSI(web1ID.HIT()), rubis.WebPort)
	lb.AddBackend("acme-web2", reg.LSI(web2ID.HIT()), rubis.WebPort)
	sim.Spawn("haproxy", lb.Run)

	// Consumers (no HIP anywhere on their side).
	clientNode := cl.AttachExternal("clients", 8, 8)
	clientT := &secio.Transport{Kind: secio.Basic, Stack: simtcp.NewStack(clientNode, simtcp.NewPlainFabric(clientNode))}
	mix := rubis.NewMix(1, dataset.NumItems(), dataset.NumUsers())
	load := &workload.ClosedLoop{
		Transport: clientT, Target: lbNode.Addr(), Port: proxy.FrontPort,
		Clients: 8, Duration: 10 * time.Second, NextPath: mix.Next,
	}
	res := load.Run(sim)

	// The rival tenant tries to reach tenant A's DB directly: its HIT is
	// not in the ACL, so the firewall (and the DB's own policy) refuse.
	spyID := identity.MustGenerate(identity.AlgECDSA)
	spyHost, _ := hip.NewHost(hip.Config{Identity: spyID, Locator: spy.Addr(), Costs: costs})
	spyT := &secio.Transport{Kind: secio.HIP, Stack: simtcp.NewStack(spy.Node, hipsim.New(spy.Node, spyHost, reg)), DialTimeout: 3 * time.Second}
	var spyErr error
	sim.Spawn("rival-spy", func(p *netsim.Proc) {
		_, spyErr = spyT.Dial(p, dbID.HIT(), rubis.DBPort)
	})

	sim.Run(30 * time.Second)
	sim.Shutdown()

	fmt.Printf("consumers: %d requests served through the HIP-terminating proxy (%.1f req/s, %d errors)\n",
		res.Completed, res.Throughput(), res.Errors)
	fmt.Printf("rival tenant's direct dial to acme-db: %v\n", spyErr)
	fmt.Printf("firewall: %d SPIs learned, %d ESP packets forwarded, %d control packets dropped\n",
		mb.LearnedSPIs(), mb.ESPForwarded, mb.ControlDropped)
	if spyErr == nil {
		log.Fatal("ISOLATION FAILURE: rival reached tenant A's database")
	}
	fmt.Println("multi-tenant isolation holds: competing tenant locked out, consumer traffic unaffected")
}
