// Migration: a VM moves to another availability zone mid-stream. Its IP
// address changes, which would kill vanilla TCP; the HIP UPDATE handshake
// (with return-routability verification) rehomes the association, the
// rendezvous server keeps the VM reachable for new peers, and dynamic DNS
// records follow — the paper's §IV-C mobility story.
package main

import (
	"fmt"
	"log"
	"time"

	"hipcloud/internal/cloud"
	"hipcloud/internal/hip"
	"hipcloud/internal/hipdns"
	"hipcloud/internal/hipsim"
	"hipcloud/internal/identity"
	"hipcloud/internal/netsim"
	"hipcloud/internal/rvs"
	"hipcloud/internal/secio"
	"hipcloud/internal/simtcp"
)

func main() {
	sim := netsim.New(3)
	net_ := netsim.NewNetwork(sim)
	cl := cloud.New(net_, cloud.EC2)
	zoneB := cl.AddZone("b")
	org := &cloud.Tenant{Name: "org", VLAN: 9}

	app := cl.Zones[0].Launch("app-vm", cloud.Micro, org)
	client := cl.Zones[0].Launch("client-vm", cloud.Micro, org)
	rvsNode := cl.AttachExternal("rendezvous", 4, 4)
	dnsNode := cl.AttachExternal("ns", 4, 4)

	reg := hipsim.NewRegistry()
	mkHIP := func(node *netsim.Node) (*secio.Transport, *hipsim.Fabric, *identity.HostIdentity) {
		id := identity.MustGenerate(identity.AlgECDSA)
		h, err := hip.NewHost(hip.Config{Identity: id, Locator: node.Addr()})
		if err != nil {
			log.Fatal(err)
		}
		f := hipsim.New(node, h, reg)
		return &secio.Transport{Kind: secio.HIP, Stack: simtcp.NewStack(node, f)}, f, id
	}
	appT, appF, appID := mkHIP(app.Node)
	cliT, _, _ := mkHIP(client.Node)

	// Rendezvous + dynamic DNS keep the VM findable across moves.
	rendezvous := rvs.New(rvsNode)
	rendezvous.Register(appID.HIT(), app.Addr())
	ns := hipdns.NewServer(dnsNode)
	publish := func() {
		ns.Set("app.org", hipdns.Record{Type: hipdns.TypeA, TTL: 5 * time.Second, Addr: app.Addr()})
	}
	publish()

	// Long-lived echo service on the app VM.
	l := appT.MustListen(7)
	sim.Spawn("app", func(p *netsim.Proc) {
		for {
			c, err := l.Accept(p, 0)
			if err != nil {
				return
			}
			conn := c
			p.Spawn("app-conn", func(hp *netsim.Proc) {
				conn.Rebind(hp)
				defer conn.Close()
				buf := make([]byte, 256)
				for {
					n, err := conn.Read(buf)
					if err != nil {
						return
					}
					if _, err := conn.Write(buf[:n]); err != nil {
						return
					}
				}
			})
		}
	})

	// Client holds one connection across the migration.
	var before, after int
	var failed bool
	sim.Spawn("client", func(p *netsim.Proc) {
		c, err := cliT.Dial(p, appID.HIT(), 7)
		if err != nil {
			log.Fatalf("dial: %v", err)
		}
		defer c.Close()
		buf := make([]byte, 256)
		roundTrip := func(i int) bool {
			msg := []byte(fmt.Sprintf("seq-%03d", i))
			if _, err := c.Write(msg); err != nil {
				return false
			}
			n, err := c.Read(buf)
			return err == nil && string(buf[:n]) == string(msg)
		}
		for i := 0; i < 20; i++ {
			if !roundTrip(i) {
				failed = true
				return
			}
			before++
			p.Sleep(50 * time.Millisecond)
		}

		// --- live migration to zone B ---
		oldAddr := app.Addr()
		newAddr := cl.Migrate(app, zoneB)
		appF.MoveTo(newAddr)                      // HIP UPDATE + shim resolution
		rendezvous.Register(appID.HIT(), newAddr) // re-registration
		publish()                                 // dynamic DNS update
		fmt.Printf("migrated app-vm: %v (zone a) -> %v (zone b)\n", oldAddr, newAddr)
		p.Sleep(200 * time.Millisecond) // UPDATE handshake settles

		for i := 20; i < 40; i++ {
			if !roundTrip(i) {
				failed = true
				return
			}
			after++
			p.Sleep(50 * time.Millisecond)
		}
	})

	sim.Run(time.Minute)
	sim.Shutdown()
	if failed {
		log.Fatal("connection broke across migration")
	}
	fmt.Printf("round trips: %d before migration, %d after — same association, same stream\n", before, after)
	fmt.Println("HIP UPDATE rehomed the association without breaking transport state")
}
