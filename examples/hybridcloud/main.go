// Hybridcloud: the paper's §IV-A hybrid scenario. An organization keeps
// its database in a private OpenNebula cloud and bursts its web tier into
// public EC2. HIP authenticates and encrypts the inter-cloud hop, the
// private cloud's DNS publishes the DB's HIP resource record, and the
// public web VMs resolve it before connecting — no VPN, no changes to the
// web application.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"hipcloud/internal/cloud"
	"hipcloud/internal/hip"
	"hipcloud/internal/hipdns"
	"hipcloud/internal/hipsim"
	"hipcloud/internal/identity"
	"hipcloud/internal/netsim"
	"hipcloud/internal/rubis"
	"hipcloud/internal/secio"
	"hipcloud/internal/simtcp"
	"hipcloud/internal/workload"
)

func main() {
	sim := netsim.New(7)
	net_ := netsim.NewNetwork(sim)

	// One network, two clouds: zone "a" plays public EC2, zone "b" the
	// private datacenter, interconnected over the (untrusted) internet
	// path between the zone routers.
	cl := cloud.New(net_, cloud.EC2)
	private := cl.AddZone("private")
	org := &cloud.Tenant{Name: "org", VLAN: 7}

	webPub := cl.Zones[0].Launch("web-public", cloud.Micro, org)
	dbPriv := private.Launch("db-private", cloud.ONLarge, org)
	dnsVM := private.Launch("ns-private", cloud.ONVirtual, org)

	// HIP endpoints on both sides of the cloud boundary.
	reg := hipsim.NewRegistry()
	costs := cloud.HIPCosts(true)
	mkHIP := func(node *netsim.Node) (*secio.Transport, *identity.HostIdentity) {
		id := identity.MustGenerate(identity.AlgECDSA)
		h, err := hip.NewHost(hip.Config{Identity: id, Locator: node.Addr(), Costs: costs})
		if err != nil {
			log.Fatal(err)
		}
		return &secio.Transport{Kind: secio.HIP, Stack: simtcp.NewStack(node, hipsim.New(node, h, reg))}, id
	}
	webT, webID := mkHIP(webPub.Node)
	dbT, dbID := mkHIP(dbPriv.Node)
	// Consumers reach the web tier over plain HTTP on the same VM.
	webPlain := &secio.Transport{Kind: secio.Basic, Stack: simtcp.NewStack(webPub.Node, simtcp.NewPlainFabric(webPub.Node))}

	// The private DNS publishes the database's HIP RR (HIT + public key
	// + locator), the deployment-section workflow of the paper.
	ns := hipdns.NewServer(dnsVM.Node)
	ns.Set("db.org.internal",
		hipdns.Record{Type: hipdns.TypeA, TTL: 30 * time.Second, Addr: dbPriv.Addr()},
		hipdns.Record{Type: hipdns.TypeHIP, TTL: 30 * time.Second, HIP: &hipdns.HIPRecord{
			HIT:       dbID.HIT(),
			Algorithm: uint8(dbID.Algorithm()),
			PublicKey: dbID.Public().DER,
		}},
	)
	resolver := hipdns.NewResolver(webPub.Node, dnsVM.Addr())

	// The database serves in the private cloud.
	dataset := rubis.Populate(7, 100, 500)
	sim.Spawn("db", (&rubis.DBServer{DB: dataset, Transport: dbT}).Run)

	// The public web VM resolves the HIP RR, then serves consumers with
	// queries crossing the cloud boundary inside ESP.
	sim.Spawn("web", func(p *netsim.Proc) {
		hipRR, err := resolver.LookupHIP(p, "db.org.internal")
		if err != nil {
			log.Fatalf("resolving db HIP RR: %v", err)
		}
		addrRec, err := resolver.LookupAddr(p, "db.org.internal")
		if err != nil {
			log.Fatalf("resolving db A: %v", err)
		}
		// Verify the published key really hashes to the HIT before trust.
		pub, err := identity.ParsePublicID(identity.Algorithm(hipRR.Algorithm), hipRR.PublicKey)
		if err != nil || pub.HIT() != hipRR.HIT {
			log.Fatal("DNS HIP RR failed HIT validation")
		}
		reg.Update(hipRR.HIT, addrRec)
		fmt.Printf("web-public resolved db.org.internal -> HIT %v at %v (key verified)\n", hipRR.HIT, addrRec)

		ws := &rubis.WebServer{
			Name:      "web-public",
			Config:    rubis.DefaultWebConfig,
			Transport: webPlain, // consumer side stays plain
			DB:        rubis.NewDBClient(webT, hipRR.HIT, 4),
		}
		p.Spawn("web-serve", ws.Run)
		// The same VM also exposes an admin console over HIP only.
		admin := &rubis.WebServer{
			Name:      "web-public/admin",
			Config:    rubis.DefaultWebConfig,
			Transport: webT,
			DB:        rubis.NewDBClient(webT, hipRR.HIT, 2),
		}
		p.Spawn("web-admin", admin.Run)
	})

	// Consumers hit the public web VM over plain HTTP (closed loop).
	clientNode := cl.AttachExternal("clients", 4, 4)
	clientT := &secio.Transport{Kind: secio.Basic, Stack: simtcp.NewStack(clientNode, simtcp.NewPlainFabric(clientNode))}
	mix := rubis.NewMix(7, dataset.NumItems(), dataset.NumUsers())
	load := &workload.ClosedLoop{
		Transport: clientT, Target: webPub.Addr(), Port: rubis.WebPort,
		Clients: 4, Duration: 10 * time.Second, NextPath: mix.Next,
	}
	res := load.Run(sim)

	// A HIP-capable "power user" workstation bypasses the web tier and
	// talks to the web VM directly over HIP (the admin path of §IV-D).
	adminNode := cl.AttachExternal("admin", 4, 4)
	adminT, _ := mkHIP(adminNode)
	var adminErr error
	sim.Spawn("admin", func(p *netsim.Proc) {
		p.Sleep(500 * time.Millisecond)
		adminErr = establishHIP(p, adminT, webID.HIT())
	})

	sim.Run(time.Minute)
	sim.Shutdown()
	if adminErr != nil {
		log.Fatalf("admin HIP access failed: %v", adminErr)
	}
	fmt.Printf("consumers: %d pages served from EC2 with data fetched from the private cloud (%d errors)\n",
		res.Completed, res.Errors)
	fmt.Printf("admin workstation authenticated to web-public directly over HIP\n")
	fmt.Printf("hybrid hop secured: web(EC2) <-> db(private) ran %d queries inside BEET-ESP\n", dataset.Queries)
}

// establishHIP runs a base exchange through the transport's fabric by
// dialing a throwaway stream port (proving reachability and auth).
func establishHIP(p *netsim.Proc, t *secio.Transport, hit netip.Addr) error {
	c, err := t.Dial(p, hit, rubis.WebPort)
	if err != nil {
		return err
	}
	c.Close()
	return nil
}
