// Quickstart: two HIP hosts on localhost (real UDP sockets) perform the
// base exchange, establish a BEET-ESP tunnel, and exchange one HTTP
// request over an encrypted reliable stream — the minimal end-to-end use
// of the library's public API.
package main

import (
	"bufio"
	"fmt"
	"log"
	"net/netip"
	"time"

	"hipcloud/internal/hip"
	"hipcloud/internal/hipudp"
	"hipcloud/internal/identity"
	"hipcloud/internal/microhttp"
)

func main() {
	// 1. Each host owns a public-key Host Identity; its HIT is its name.
	serverID := identity.MustGenerate(identity.AlgECDSA)
	clientID := identity.MustGenerate(identity.AlgECDSA)
	fmt.Printf("server HIT: %v\nclient HIT: %v\n", serverID.HIT(), clientID.HIT())

	// 2. Bring up two HIP stacks over UDP on localhost.
	mk := func(id *identity.HostIdentity, addr string) *hipudp.Stack {
		host, err := hip.NewHost(hip.Config{
			Identity: id,
			Locator:  netip.MustParseAddrPort(addr).Addr(),
		})
		if err != nil {
			log.Fatal(err)
		}
		stack, err := hipudp.NewStack(host, addr)
		if err != nil {
			log.Fatal(err)
		}
		return stack
	}
	server := mk(serverID, "127.0.0.1:10700")
	client := mk(clientID, "127.0.0.1:10701")
	defer server.Close()
	defer client.Close()

	// 3. Static peer resolution (what DNS HIP RRs provide in deployment).
	client.AddPeer(serverID.HIT(), netip.MustParseAddrPort("127.0.0.1:10700"))
	server.AddPeer(clientID.HIT(), netip.MustParseAddrPort("127.0.0.1:10701"))

	// 4. Serve HTTP over encrypted HIP streams.
	l, err := server.Listen(80)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				br := bufio.NewReader(conn)
				req, err := microhttp.ReadRequest(br)
				if err != nil {
					return
				}
				microhttp.WriteResponse(conn, &microhttp.Response{
					Status: 200,
					Body: []byte(fmt.Sprintf("hello %v, you asked for %s — served over ESP\n",
						conn.PeerHIT(), req.Path)),
				})
			}()
		}
	}()

	// 5. Dial by HIT: the base exchange runs transparently on first use.
	start := time.Now()
	conn, err := client.Dial(serverID.HIT(), 80, 10*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	fmt.Printf("connected (BEX + stream) in %v\n", time.Since(start).Round(time.Millisecond))

	resp, err := microhttp.RoundTrip(conn, bufio.NewReader(conn),
		&microhttp.Request{Method: "GET", Path: "/welcome"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HTTP %d: %s", resp.Status, resp.Body)
}
