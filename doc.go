// Package hipcloud is a from-scratch Go reproduction of "Secure
// Networking for Virtual Machines in the Cloud" (Komu et al., IEEE
// CLUSTER 2012): a Host Identity Protocol stack (base exchange, BEET-mode
// ESP, mobility updates, rendezvous, HIP DNS records, HIT firewalling,
// Teredo NAT traversal), the paper's evaluation testbed (a deterministic
// discrete-event cloud simulator with EC2 and OpenNebula profiles, a
// RUBiS-like multi-tier service, a reverse proxy and jmeter/httperf/iperf
// workload generators), and a real-UDP driver running the same protocol
// cores over actual sockets.
//
// The root package only anchors documentation and the repository-level
// benchmarks; the implementation lives under internal/ (see DESIGN.md for
// the system inventory and EXPERIMENTS.md for paper-vs-measured results).
package hipcloud
